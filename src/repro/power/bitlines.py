"""Kamble & Ghose analytical cache energy model.

"The per-access costs of the cache-structures are calculated based on
the model presented in [Kamble & Ghose 97, Wattch]" (Section 2).  The
model decomposes one cache access into the classic components:

* row decode,
* wordline assertion across the selected row,
* bitline precharge + swing (reads swing a fraction of Vdd before the
  sense amps fire; writes swing fully),
* sense amplification,
* tag read + comparators (one comparator per way),
* output drivers for the bits actually delivered.

Energies are computed from the cache geometry and the 0.35 um
capacitance constants in :mod:`repro.config.technology`.
"""

from __future__ import annotations

import dataclasses

from repro.config.system import CacheConfig
from repro.config.technology import (
    C_BITLINE_PER_CELL,
    C_DECODER_PER_ROW,
    C_OUTPUT_DRIVER_PER_BIT,
    C_PRECHARGE_PER_BITLINE,
    C_SENSE_AMP,
    C_TAG_COMPARATOR_PER_BIT,
    C_WORDLINE_PER_CELL,
    Technology,
    DEFAULT_TECHNOLOGY,
)

READ_BITLINE_SWING = 0.25
"""Fraction of Vdd the bitlines swing on a read before sensing."""

WRITE_BITLINE_SWING = 1.0
"""Writes drive the bitlines rail to rail."""


@dataclasses.dataclass(frozen=True)
class CacheEnergyBreakdown:
    """Per-access energy decomposition (joules)."""

    decode_j: float
    wordline_j: float
    bitline_j: float
    sense_j: float
    tag_j: float
    output_j: float

    @property
    def total_j(self) -> float:
        """Total energy of one access."""
        return (
            self.decode_j
            + self.wordline_j
            + self.bitline_j
            + self.sense_j
            + self.tag_j
            + self.output_j
        )


class CacheEnergyModel:
    """Per-access energy for one set-associative cache."""

    def __init__(
        self,
        config: CacheConfig,
        *,
        output_bits: int,
        technology: Technology = DEFAULT_TECHNOLOGY,
        max_subarray_rows: int = 256,
        serial_tag_data: bool | None = None,
    ) -> None:
        if output_bits <= 0:
            raise ValueError(f"output_bits must be positive, got {output_bits}")
        if max_subarray_rows <= 0:
            raise ValueError(f"max_subarray_rows must be positive")
        self.config = config
        self.output_bits = output_bits
        self.technology = technology
        self.max_subarray_rows = max_subarray_rows
        # Large (L2-class) caches probe tags first and read only the
        # matching way; small L1s read all ways in parallel for speed.
        if serial_tag_data is None:
            serial_tag_data = config.size_bytes > 256 * 1024
        self.serial_tag_data = serial_tag_data

    @property
    def rows(self) -> int:
        """Total data-array rows (one per set)."""
        return self.config.num_sets

    @property
    def subarray_rows(self) -> int:
        """Rows per subarray: only one subarray's bitlines swing."""
        return min(self.rows, self.max_subarray_rows)

    @property
    def data_columns(self) -> int:
        """Active data bitline pairs per access.

        Parallel-read caches activate every way; serial tag-data caches
        activate only the selected way's line."""
        per_way = self.config.line_bytes * 8
        if self.serial_tag_data:
            return per_way
        return per_way * self.config.associativity

    @property
    def tag_columns(self) -> int:
        """Tag-array bitline pairs."""
        return self.config.tag_bits * self.config.associativity

    def breakdown(self, *, write: bool = False) -> CacheEnergyBreakdown:
        """Energy decomposition of one access."""
        tech = self.technology
        swing = WRITE_BITLINE_SWING if write else READ_BITLINE_SWING
        columns = self.data_columns + self.tag_columns
        if write:
            # A write drives only the written word's bitlines rail to
            # rail (plus the tag lookup); unwritten columns stay
            # precharged.
            columns = min(self.output_bits, self.data_columns) + self.tag_columns

        decode_c = self.rows * C_DECODER_PER_ROW
        wordline_c = columns * C_WORDLINE_PER_CELL
        # Each bitline carries one diffusion cap per row of the active
        # subarray plus its precharge driver; energy scales with the
        # swing fraction.
        bitline_c = columns * (
            self.subarray_rows * C_BITLINE_PER_CELL + C_PRECHARGE_PER_BITLINE
        )
        sense_c = 0.0 if write else columns * C_SENSE_AMP
        tag_c = self.config.tag_bits * self.config.associativity * C_TAG_COMPARATOR_PER_BIT
        output_c = self.output_bits * C_OUTPUT_DRIVER_PER_BIT

        return CacheEnergyBreakdown(
            decode_j=tech.switching_energy(decode_c),
            wordline_j=tech.switching_energy(wordline_c),
            bitline_j=tech.switching_energy(bitline_c) * swing,
            sense_j=tech.switching_energy(sense_c),
            tag_j=tech.switching_energy(tag_c),
            output_j=tech.switching_energy(output_c),
        )

    def read_energy_j(self) -> float:
        """Energy of one read access."""
        return self.breakdown(write=False).total_j

    def write_energy_j(self) -> float:
        """Energy of one write access."""
        return self.breakdown(write=True).total_j

    def access_energy_j(self, write_fraction: float = 0.3) -> float:
        """Blended per-access energy for a given write mix."""
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(f"write fraction must be in [0, 1]: {write_fraction}")
        return (
            (1.0 - write_fraction) * self.read_energy_j()
            + write_fraction * self.write_energy_j()
        )
