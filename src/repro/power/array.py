"""Wattch-style array and CAM structure energy models.

"The associative structures of the processor are modeled as given in
[Palacharla 97, Wattch]" (Section 2).  Two building blocks cover the
out-of-order engine:

* :class:`ArrayEnergyModel` — a RAM array with decoded rows (register
  file, rename map, ROB, branch predictor tables),
* :class:`CAMEnergyModel` — a content-addressed structure whose access
  drives matchlines across every entry (the unified TLB, the issue
  window's wakeup path, the LSQ address-match path).
"""

from __future__ import annotations

from repro.config.technology import (
    C_BITLINE_PER_CELL,
    C_CAM_MATCHLINE_PER_BIT,
    C_DECODER_PER_ROW,
    C_OUTPUT_DRIVER_PER_BIT,
    C_PRECHARGE_PER_BITLINE,
    C_SENSE_AMP,
    C_WORDLINE_PER_CELL,
    DEFAULT_TECHNOLOGY,
    Technology,
)
from repro.power.bitlines import READ_BITLINE_SWING, WRITE_BITLINE_SWING


class ArrayEnergyModel:
    """Per-port-access energy of a decoded RAM array."""

    def __init__(
        self,
        name: str,
        rows: int,
        bits_per_row: int,
        *,
        technology: Technology = DEFAULT_TECHNOLOGY,
    ) -> None:
        if rows <= 0 or bits_per_row <= 0:
            raise ValueError(f"array {name}: rows and bits must be positive")
        self.name = name
        self.rows = rows
        self.bits_per_row = bits_per_row
        self.technology = technology

    def access_energy_j(self, *, write: bool = False) -> float:
        """Energy of one port access (read or write)."""
        tech = self.technology
        swing = WRITE_BITLINE_SWING if write else READ_BITLINE_SWING
        decode_c = self.rows * C_DECODER_PER_ROW
        wordline_c = self.bits_per_row * C_WORDLINE_PER_CELL
        bitline_c = self.bits_per_row * (
            self.rows * C_BITLINE_PER_CELL + C_PRECHARGE_PER_BITLINE
        )
        sense_c = 0.0 if write else self.bits_per_row * C_SENSE_AMP
        output_c = 0.0 if write else self.bits_per_row * C_OUTPUT_DRIVER_PER_BIT
        return (
            tech.switching_energy(decode_c)
            + tech.switching_energy(wordline_c)
            + tech.switching_energy(bitline_c) * swing
            + tech.switching_energy(sense_c)
            + tech.switching_energy(output_c)
        )

    @property
    def latch_bits(self) -> int:
        """Storage bits, used for the clock-loading estimate."""
        return self.rows * self.bits_per_row


class CAMEnergyModel:
    """Per-search energy of a fully-associative structure."""

    def __init__(
        self,
        name: str,
        entries: int,
        tag_bits: int,
        data_bits: int = 0,
        *,
        technology: Technology = DEFAULT_TECHNOLOGY,
    ) -> None:
        if entries <= 0 or tag_bits <= 0 or data_bits < 0:
            raise ValueError(f"CAM {name}: invalid geometry")
        self.name = name
        self.entries = entries
        self.tag_bits = tag_bits
        self.data_bits = data_bits
        self.technology = technology

    def search_energy_j(self) -> float:
        """Energy of one associative search: every matchline switches."""
        tech = self.technology
        matchline_c = self.entries * self.tag_bits * C_CAM_MATCHLINE_PER_BIT
        # Broadcasting the search key down the tag columns.
        taglines_c = self.tag_bits * self.entries * C_BITLINE_PER_CELL * 0.5
        energy = tech.switching_energy(matchline_c) + tech.switching_energy(taglines_c)
        if self.data_bits:
            # Reading the matched entry's payload.
            read_c = self.data_bits * (C_SENSE_AMP + C_OUTPUT_DRIVER_PER_BIT)
            energy += tech.switching_energy(read_c) + (
                tech.switching_energy(self.data_bits * C_BITLINE_PER_CELL * self.entries)
                * READ_BITLINE_SWING
            )
        return energy

    def write_energy_j(self) -> float:
        """Energy of installing one entry."""
        tech = self.technology
        bits = self.tag_bits + self.data_bits
        write_c = bits * (C_BITLINE_PER_CELL * self.entries + C_PRECHARGE_PER_BITLINE)
        return tech.switching_energy(write_c) * WRITE_BITLINE_SWING

    @property
    def latch_bits(self) -> int:
        """Storage bits, used for the clock-loading estimate."""
        return self.entries * (self.tag_bits + self.data_bits)
