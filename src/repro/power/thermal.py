"""Lumped thermal model for dynamic thermal management studies.

The paper motivates average-power design through DTM: "In the presence
of dynamic thermal management techniques, a system can be designed
accounting for average power consumption instead of peak power
[Brooks & Martonosi, HPCA-7]" (Section 3.1).  This module closes that
loop: it drives a first-order lumped RC package model with a power
trace and checks whether a DTM throttle would ever have to engage.

Model: ``C_th * dT/dt = P(t) - (T - T_ambient) / R_th``, integrated
per log interval (exact exponential update per piecewise-constant
power).
"""

from __future__ import annotations

import dataclasses
import math

from repro.stats.postprocess import PowerTrace

R_THERMAL_C_PER_W = 1.8
"""Junction-to-ambient thermal resistance of a late-90s ceramic package
with a heatsink (degC per watt)."""

C_THERMAL_J_PER_C = 25.0
"""Lumped thermal capacitance (joules per degC)."""

T_AMBIENT_C = 45.0
"""Ambient (in-chassis) temperature."""

DTM_TRIP_C = 85.0
"""Junction temperature at which a DTM throttle must engage."""


@dataclasses.dataclass(frozen=True)
class ThermalProfile:
    """Temperature over time for one run."""

    times_s: list[float]
    temperature_c: list[float]
    trip_c: float

    @property
    def peak_c(self) -> float:
        """Hottest sampled temperature."""
        return max(self.temperature_c) if self.temperature_c else T_AMBIENT_C

    @property
    def steady_state_margin_c(self) -> float:
        """Headroom between the trip point and the final temperature."""
        final = self.temperature_c[-1] if self.temperature_c else T_AMBIENT_C
        return self.trip_c - final

    @property
    def dtm_engaged(self) -> bool:
        """True if the throttle trip point was ever crossed."""
        return self.peak_c >= self.trip_c

    def time_above(self, threshold_c: float) -> float:
        """Seconds spent at or above ``threshold_c`` (sample-resolution)."""
        if len(self.times_s) < 2:
            return 0.0
        step = self.times_s[1] - self.times_s[0]
        return step * sum(1 for t in self.temperature_c if t >= threshold_c)


@dataclasses.dataclass(frozen=True)
class ThermalModel:
    """First-order RC package model."""

    r_thermal: float = R_THERMAL_C_PER_W
    c_thermal: float = C_THERMAL_J_PER_C
    ambient_c: float = T_AMBIENT_C
    trip_c: float = DTM_TRIP_C

    def __post_init__(self) -> None:
        if self.r_thermal <= 0 or self.c_thermal <= 0:
            raise ValueError("thermal R and C must be positive")
        if self.trip_c <= self.ambient_c:
            raise ValueError("trip point must exceed ambient")

    @property
    def time_constant_s(self) -> float:
        """The package's RC time constant."""
        return self.r_thermal * self.c_thermal

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature under constant ``power_w``."""
        if power_w < 0:
            raise ValueError("power cannot be negative")
        return self.ambient_c + power_w * self.r_thermal

    def sustainable_power_w(self) -> float:
        """The largest constant power that never trips the throttle."""
        return (self.trip_c - self.ambient_c) / self.r_thermal

    def profile(
        self,
        trace: PowerTrace,
        *,
        include_disk: bool = False,
        initial_c: float | None = None,
    ) -> ThermalProfile:
        """Integrate the package temperature along a power trace.

        The CPU package only heats from on-chip power; ``include_disk``
        exists for enclosure-level what-ifs.
        """
        series = trace.total_with_disk_w if include_disk else trace.total_w
        temperature = initial_c if initial_c is not None else self.ambient_c
        tau = self.time_constant_s
        times: list[float] = []
        temps: list[float] = []
        previous_t = 0.0
        for time_s, power_w in zip(trace.times_s, series):
            dt = max(1e-9, (time_s - previous_t) * 2.0)  # midpoint spacing
            previous_t = time_s
            target = self.steady_state_c(max(0.0, power_w))
            temperature = target + (temperature - target) * math.exp(-dt / tau)
            times.append(time_s)
            temps.append(temperature)
        return ThermalProfile(times_s=times, temperature_c=temps,
                              trip_c=self.trip_c)
