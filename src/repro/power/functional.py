"""Functional-unit and result-bus energy models.

Lumped switched-capacitance models for the execution resources: the
integer ALUs, the multiplier, the FP units, and the result bus that
broadcasts completed values back to the window and register file.
"""

from __future__ import annotations

from repro.config.technology import (
    C_FU_FP,
    C_FU_INT,
    C_RESULT_BUS_PER_BIT_MM,
    DEFAULT_TECHNOLOGY,
    DIE_SIZE_MM,
    Technology,
)

IMUL_CAP_FACTOR = 2.6
"""Integer multiply/divide switches ~2.6x the ALU capacitance."""

FMUL_CAP_FACTOR = 1.8
"""FP multiply/divide/sqrt relative to the FP adder."""

RESULT_BUS_BITS = 64
RESULT_BUS_RUN_FRACTION = 0.5
"""The result bus spans roughly half the die edge."""


class FunctionalUnitEnergyModel:
    """Per-operation energies for the execution units."""

    def __init__(self, technology: Technology = DEFAULT_TECHNOLOGY) -> None:
        self.technology = technology

    def ialu_energy_j(self) -> float:
        """One integer ALU operation."""
        return self.technology.switching_energy(C_FU_INT)

    def imul_energy_j(self) -> float:
        """One integer multiply/divide."""
        return self.technology.switching_energy(C_FU_INT * IMUL_CAP_FACTOR)

    def falu_energy_j(self) -> float:
        """One FP add/sub/compare."""
        return self.technology.switching_energy(C_FU_FP)

    def fmul_energy_j(self) -> float:
        """One FP multiply/divide/sqrt."""
        return self.technology.switching_energy(C_FU_FP * FMUL_CAP_FACTOR)

    def result_bus_energy_j(self) -> float:
        """One result broadcast over the bypass/result bus."""
        run_mm = DIE_SIZE_MM * RESULT_BUS_RUN_FRACTION
        cap = RESULT_BUS_BITS * C_RESULT_BUS_PER_BIT_MM * run_mm
        return self.technology.switching_energy(cap)
