"""Voltage/frequency scaling evaluation (post-processing).

The paper's introduction lists supply-voltage scaling among the
circuit-level techniques its tool should help evaluate (Section 1), and
its EDP metric exists precisely to judge such energy-vs-performance
tradeoffs (Section 3.1).  This module evaluates a finished run at other
(Vdd, f) operating points, entirely in post-processing:

* dynamic energy scales with Vdd^2 (every analytical model here is
  ``0.5 C V^2`` based),
* run time scales with 1/f for the CPU-bound part, while disk service
  and spin times are wall-clock fixed,
* the disk's energy is re-integrated over the stretched timeline (a
  slower CPU keeps the platter powered longer — the reason DVFS can
  *lose* system energy on disk-heavy workloads).

Operating points follow the classic alpha-power delay model: frequency
at voltage V relative to (V0, f0) is ``f0 * (V/V0 - Vt/V0)^a / (1 - Vt/V0)^a``.
"""

from __future__ import annotations

import dataclasses

from repro.config.technology import Technology

ALPHA = 1.6
"""Velocity-saturation exponent of the alpha-power delay model."""

THRESHOLD_V = 0.55
"""Device threshold voltage at the 0.35 um design point."""


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """One (Vdd, clock) pair."""

    vdd: float
    clock_hz: float

    def __post_init__(self) -> None:
        if self.vdd <= THRESHOLD_V:
            raise ValueError(
                f"Vdd {self.vdd} V is at or below threshold ({THRESHOLD_V} V)"
            )
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")


def scaled_frequency_hz(vdd: float, base: Technology) -> float:
    """Maximum clock at ``vdd``, alpha-power scaled from the base point."""
    if vdd <= THRESHOLD_V:
        raise ValueError(f"Vdd {vdd} V is at or below threshold")
    numerator = (vdd - THRESHOLD_V) ** ALPHA / vdd
    denominator = (base.vdd - THRESHOLD_V) ** ALPHA / base.vdd
    return base.clock_hz * numerator / denominator


def operating_point(vdd: float, base: Technology) -> OperatingPoint:
    """The operating point at ``vdd`` with its alpha-power clock."""
    return OperatingPoint(vdd=vdd, clock_hz=scaled_frequency_hz(vdd, base))


@dataclasses.dataclass(frozen=True)
class DVFSEvaluation:
    """A run re-evaluated at one operating point."""

    point: OperatingPoint
    cpu_energy_j: float
    disk_energy_j: float
    duration_s: float

    @property
    def total_energy_j(self) -> float:
        """System energy at this point."""
        return self.cpu_energy_j + self.disk_energy_j

    @property
    def energy_delay_product(self) -> float:
        """EDP at this point (joule-seconds)."""
        return self.total_energy_j * self.duration_s


def evaluate_at(result, point: OperatingPoint) -> DVFSEvaluation:
    """Re-evaluate a :class:`~repro.core.report.BenchmarkResult` at
    ``point``.

    CPU/memory dynamic energy scales with ``(V/V0)^2``; the busy part of
    the timeline stretches by ``f0/f`` while disk *service* time is
    unchanged; idle-wait time cannot go below the disk's actual latency,
    so total duration = busy/f-scaled + the original I/O wait.  The disk
    then holds its between-request mode for the longer run, charged at
    that mode's (voltage-independent) power.
    """
    base = result.model.technology
    voltage_ratio = (point.vdd / base.vdd) ** 2
    slowdown = base.clock_hz / point.clock_hz

    cycles = int(result.timeline.log.total_cycles()) or 1
    counters = result.timeline.log.total_counters()
    cpu_energy = result.model.ledger(counters, cycles).total_j * voltage_ratio

    busy_s = result.timeline.duration_s - result.timeline.idle_wait_s
    duration = busy_s * slowdown + result.timeline.idle_wait_s

    # Disk: the requests themselves are unchanged; the stretched compute
    # time is spent in the disk's between-request resting mode.
    disk = result.timeline.disk
    resting_power = (
        3.2 if disk.policy.conventional else disk.energy.average_power_w()
    )
    extra_s = duration - result.timeline.duration_s
    disk_energy = disk.energy.energy_j + max(0.0, extra_s) * resting_power

    return DVFSEvaluation(
        point=point,
        cpu_energy_j=cpu_energy,
        disk_energy_j=disk_energy,
        duration_s=duration,
    )


def sweep(result, vdds: list[float]) -> list[DVFSEvaluation]:
    """Evaluate a run across a list of supply voltages."""
    base = result.model.technology
    return [evaluate_at(result, operating_point(vdd, base)) for vdd in vdds]
