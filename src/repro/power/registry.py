"""The declarative :class:`PowerComponent` registry.

SoftWatt's architecture is "instrument the simulators to count
accesses, then turn counts into energy after the fact".  The second
half used to be a hand-written arithmetic block in
``ProcessorPowerModel.energy_by_category`` whose category list leaked
into every report layer.  This module replaces it with data: each
modelled unit is a :class:`PowerComponent` declaring

* the :class:`~repro.stats.counters.AccessCounters` fields it consumes,
* an energy rule turning those counters into joules, and
* the report category it rolls up to.

The registry evaluates all components over an interval and returns a
:class:`~repro.power.ledger.EnergyLedger`; report-category order is
*derived* from component declaration order, so adding a unit, a
category, or a backend is a registry entry — not an edit to five
files.  Simulation-time components (the disk, whose energy is
integrated event-exactly during the run rather than post-processed
from counters) are declared with ``rule=None`` and attached to ledgers
by the timeline layer.

Numerical contract: a rule returns a *tuple of terms*, and category
rollups accumulate those terms one by one in declaration order — the
exact floating-point evaluation order of the historical hand-written
expressions, pinned bit-for-bit by ``tests/test_golden_energy.py``.

To add a component, declare it in :data:`POWER_COMPONENTS` (see
DESIGN.md §7 for a worked L3 example); every report surface picks it
up automatically.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Iterator

from repro.power.conditional import gating_factor
from repro.power.ledger import EnergyLedger
from repro.stats.counters import COUNTER_FIELDS, UnknownCounterError

if TYPE_CHECKING:
    from repro.power.processor import ProcessorPowerModel
    from repro.stats.counters import AccessCounters
    from repro.stats.source import CounterSource

#: An energy rule: ``(model, counters, cycles) -> terms``.  The terms
#: are joule contributions summed in order into both the component and
#: its category (keeping the historical evaluation order bit-exact).
EnergyRule = Callable[
    ["ProcessorPowerModel", "AccessCounters", int], tuple[float, ...]
]


class _DeclaredCounters:
    """A counter view restricted to one component's declaration.

    Rules receive this instead of the raw
    :class:`~repro.stats.counters.AccessCounters`, so reading a counter
    the component did not declare raises a clear
    :class:`~repro.stats.counters.UnknownCounterError` instead of
    silently succeeding (or, worse, reading 0 through a permissive
    consumer).
    """

    __slots__ = ("_counters", "_declared", "_component")

    def __init__(
        self, counters: "AccessCounters", declared: frozenset, component: str
    ) -> None:
        self._counters = counters
        self._declared = declared
        self._component = component

    def __getattr__(self, name: str):
        # Only reached for names outside __slots__, i.e. counter reads.
        if name in self._declared:
            return getattr(self._counters, name)
        raise UnknownCounterError(
            f"power component {self._component!r} reads counter {name!r} "
            f"it does not declare; declared counters: "
            f"{', '.join(sorted(self._declared))}"
        )


@dataclasses.dataclass(frozen=True)
class PowerComponent:
    """One modelled unit: counters in, joules out, one report category."""

    name: str
    category: str
    counters: tuple[str, ...]
    """The :data:`~repro.stats.counters.COUNTER_FIELDS` this component
    consumes (validated at declaration time)."""
    rule: EnergyRule | None
    """``counters -> joules`` terms; ``None`` marks a simulation-time
    component whose energy is integrated during the run (the disk)."""
    description: str = ""

    def __post_init__(self) -> None:
        unknown = [name for name in self.counters if name not in COUNTER_FIELDS]
        if unknown:
            raise UnknownCounterError(
                f"power component {self.name!r} declares unknown counters "
                f"{unknown}; valid counters: {', '.join(COUNTER_FIELDS)}"
            )
        if self.rule is None and self.counters:
            raise ValueError(
                f"simulation-time component {self.name!r} cannot declare "
                f"counters (its energy is not post-processed)"
            )
        object.__setattr__(self, "_declared", frozenset(self.counters))

    @property
    def simulation_time(self) -> bool:
        """True when the component's energy is integrated during the
        run rather than evaluated from counters."""
        return self.rule is None


class PowerRegistry:
    """An ordered collection of :class:`PowerComponent` declarations."""

    def __init__(self, components: tuple[PowerComponent, ...]) -> None:
        names = [component.name for component in components]
        if len(names) != len(set(names)):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate power components: {duplicates}")
        self._components = tuple(components)
        self._by_name = {component.name: component for component in components}
        categories: list[str] = []
        counter_categories: list[str] = []
        for component in components:
            if component.category not in categories:
                categories.append(component.category)
            if not component.simulation_time and (
                component.category not in counter_categories
            ):
                counter_categories.append(component.category)
        self._categories = tuple(categories)
        self._counter_categories = tuple(counter_categories)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def components(self) -> tuple[PowerComponent, ...]:
        return self._components

    @property
    def categories(self) -> tuple[str, ...]:
        """All report categories, in declaration (legend) order."""
        return self._categories

    @property
    def counter_categories(self) -> tuple[str, ...]:
        """Categories produced by counter evaluation (no disk)."""
        return self._counter_categories

    def required_counters(self) -> tuple[str, ...]:
        """Counters some counter-driven component consumes, in
        :data:`~repro.stats.counters.COUNTER_FIELDS` order.

        This is the pricing layer's declared input contract: an
        external counter source (see :mod:`repro.ingest`) must supply
        exactly these counters or some component prices zeros.
        Counters outside this set (miss counts kept for reporting)
        are optional.
        """
        consumed = set()
        for component in self._components:
            consumed.update(component.counters)
        return tuple(name for name in COUNTER_FIELDS if name in consumed)

    def counter_requirements(self) -> dict[str, tuple[str, ...]]:
        """Per counter-driven component: the counters its rule reads.

        Simulation-time components (the disk) consume no counters and
        are omitted — they cannot be starved by a mapping file.
        """
        return {
            component.name: component.counters
            for component in self._components
            if not component.simulation_time
        }

    def schema(self) -> list[dict]:
        """The registry as plain data (for ``repro components --json``
        and mapping-file validation tooling): one dict per component
        with its name, category, rule inputs, and kind."""
        return [
            {
                "name": component.name,
                "category": component.category,
                "counters": list(component.counters),
                "simulation_time": component.simulation_time,
                "description": component.description,
            }
            for component in self._components
        ]

    def component(self, name: str) -> PowerComponent:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown power component {name!r}; registry has "
                f"{', '.join(self._by_name)}"
            ) from None

    def __iter__(self) -> Iterator[PowerComponent]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        model: "ProcessorPowerModel",
        counters: "AccessCounters",
        cycles: int,
    ) -> EnergyLedger:
        """Evaluate every counter-driven component over an interval.

        Category values accumulate term by term in declaration order —
        bit-identical to the historical inline arithmetic.
        """
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        component_j: dict[str, float] = {}
        category_j: dict[str, float] = {
            name: 0.0 for name in self._counter_categories
        }
        component_category: dict[str, str] = {}
        for component in self._components:
            rule = component.rule
            if rule is None:
                continue
            view = _DeclaredCounters(
                counters, component._declared, component.name
            )
            terms = rule(model, view, cycles)
            category = component.category
            subtotal = 0.0
            rollup = category_j[category]
            for term in terms:
                subtotal += term
                rollup += term
            category_j[category] = rollup
            component_j[component.name] = subtotal
            component_category[component.name] = category
        return EnergyLedger._raw(component_j, category_j, component_category)

    def evaluate_source(
        self, model: "ProcessorPowerModel", source: "CounterSource"
    ) -> EnergyLedger:
        """Evaluate every counter-driven component over a source.

        ``source`` is anything satisfying the
        :class:`~repro.stats.source.CounterSource` protocol — a
        :class:`~repro.stats.simlog.SimulationLog`, one of its records,
        a :class:`~repro.stats.source.CounterBundle`, or an
        :class:`~repro.ingest.pricing.IngestedRun` of externally
        measured counters.  The pricing arithmetic is identical
        regardless of who produced the counters.
        """
        cycles = max(1, int(source.total_cycles()))
        return self.evaluate(model, source.total_counters(), cycles)

    def reevaluate(
        self, model: "ProcessorPowerModel", log: "CounterSource"
    ) -> EnergyLedger:
        """Re-price a finished run's counters under a different model.

        ``log`` is any :class:`~repro.stats.source.CounterSource`.
        This is the ledger-tier sweep entry point: a power-only
        parameter change (supply voltage, calibration) re-evaluates the
        registry over cached counters instead of re-simulating, and the
        result is bit-identical to a full re-run because the counters
        are unchanged by construction.
        """
        return self.evaluate_source(model, log)


# ----------------------------------------------------------------------
# Energy rules (term order matches the paper-era inline expressions)
# ----------------------------------------------------------------------


def _tlb_terms(model, c, cycles):
    return (
        c.tlb_access * model.tlb.search_energy_j(),
        c.tlb_miss * model.tlb.write_energy_j(),
    )


def _regfile_terms(model, c, cycles):
    return (
        c.regfile_read * model.regfile.access_energy_j(),
        c.regfile_write * model.regfile.access_energy_j(write=True),
    )


def _window_terms(model, c, cycles):
    return (
        c.window_dispatch * model.window_array.access_energy_j(write=True),
        c.window_issue * model.window_array.access_energy_j(),
        c.window_wakeup * model.wakeup_cam.search_energy_j(),
    )


def _lsq_terms(model, c, cycles):
    return (c.lsq_access * model.lsq.search_energy_j(),)


def _rename_terms(model, c, cycles):
    # Renames are a balanced read/write mix of the map table.
    return (
        c.rename_access
        * (
            model.rename.access_energy_j()
            + model.rename.access_energy_j(write=True)
        )
        / 2.0,
    )


def _rob_terms(model, c, cycles):
    return (c.rob_access * model.rob.access_energy_j(write=True) * 0.6,)


def _bht_terms(model, c, cycles):
    return (c.bpred_access * model.bht.access_energy_j(),)


def _btb_terms(model, c, cycles):
    return (c.btb_access * model.btb.access_energy_j(),)


def _ras_terms(model, c, cycles):
    return (c.ras_access * model.ras.access_energy_j(),)


def _fu_terms(model, c, cycles):
    return (
        c.ialu_access * model.fus.ialu_energy_j(),
        c.imul_access * model.fus.imul_energy_j(),
        c.falu_access * model.fus.falu_energy_j(),
        c.fmul_access * model.fus.fmul_energy_j(),
        c.resultbus_access * model.fus.result_bus_energy_j(),
    )


def _l1d_terms(model, c, cycles):
    # Reads and writes blended from the observed mix.
    data_writes = min(c.stores, c.l1d_access)
    return (
        (c.l1d_access - data_writes) * model.l1d.read_energy_j(),
        data_writes * model.l1d.write_energy_j(),
    )


def _l2d_terms(model, c, cycles):
    return (c.l2d_access * model.l2.access_energy_j(write_fraction=0.3),)


def _l1i_terms(model, c, cycles):
    return (c.l1i_access * model.l1i.read_energy_j(),)


def _l2i_terms(model, c, cycles):
    return (c.l2i_access * model.l2.read_energy_j(),)


def _clock_terms(model, c, cycles):
    gate = gating_factor(c, cycles, model.clocked_units)
    return (cycles * model.clock.energy_per_cycle_j(gating_factor=gate),)


def _dram_terms(model, c, cycles):
    return (model.memory.energy_j(c.mem_access, cycles),)


#: The machine, declared.  Order matters twice: components of one
#: category accumulate in this order (bit-exactness), and report
#: category order is first-appearance order (the paper's legend:
#: datapath, l1d, l2d, l1i, l2i, clock, memory, then the disk).
POWER_COMPONENTS: tuple[PowerComponent, ...] = (
    PowerComponent(
        "tlb", "datapath", ("tlb_access", "tlb_miss"), _tlb_terms,
        "unified TLB CAM: searches plus miss refills",
    ),
    PowerComponent(
        "regfile", "datapath", ("regfile_read", "regfile_write"),
        _regfile_terms, "integer + FP register file ports",
    ),
    PowerComponent(
        "window", "datapath",
        ("window_dispatch", "window_issue", "window_wakeup"),
        _window_terms, "issue window array and wakeup CAM",
    ),
    PowerComponent(
        "lsq", "datapath", ("lsq_access",), _lsq_terms,
        "load/store queue address CAM",
    ),
    PowerComponent(
        "rename", "datapath", ("rename_access",), _rename_terms,
        "register rename map table",
    ),
    PowerComponent(
        "rob", "datapath", ("rob_access",), _rob_terms,
        "reorder buffer",
    ),
    PowerComponent(
        "bht", "datapath", ("bpred_access",), _bht_terms,
        "branch history table",
    ),
    PowerComponent(
        "btb", "datapath", ("btb_access",), _btb_terms,
        "branch target buffer",
    ),
    PowerComponent(
        "ras", "datapath", ("ras_access",), _ras_terms,
        "return address stack",
    ),
    PowerComponent(
        "fus", "datapath",
        ("ialu_access", "imul_access", "falu_access", "fmul_access",
         "resultbus_access"),
        _fu_terms, "functional units and the result bus",
    ),
    PowerComponent(
        "l1d", "l1d", ("l1d_access", "stores"), _l1d_terms,
        "L1 data cache (read/write mix from the store count)",
    ),
    PowerComponent(
        "l2d", "l2d", ("l2d_access",), _l2d_terms,
        "L2 data-side references",
    ),
    PowerComponent(
        "l1i", "l1i", ("l1i_access",), _l1i_terms,
        "L1 instruction cache",
    ),
    PowerComponent(
        "l2i", "l2i", ("l2i_access",), _l2i_terms,
        "L2 instruction-side references",
    ),
    PowerComponent(
        "clock", "clock",
        ("window_dispatch", "l1i_access", "l1d_access", "window_issue",
         "lsq_access", "regfile_read", "rob_access", "ialu_access"),
        _clock_terms,
        "clock tree under the Section 2 conditional-clocking model",
    ),
    PowerComponent(
        "dram", "memory", ("mem_access",), _dram_terms,
        "main memory: accesses plus standing refresh",
    ),
    PowerComponent(
        "disk", "disk", (), None,
        "power-managed disk, integrated event-exactly during the run",
    ),
)

#: The process-wide registry every pipeline layer evaluates against.
REGISTRY = PowerRegistry(POWER_COMPONENTS)

#: Report categories in legend order, disk included — the single
#: definition site; every layer derives its order from the registry.
CATEGORIES: tuple[str, ...] = REGISTRY.categories
