"""Continuous micro-batching for the estimation server.

The per-request path runs every admitted request's simulation alone,
even when the batched SoA engine (DESIGN.md §10) retires several times
more aggregate instructions/sec once independent runs advance in
lockstep.  :class:`BatchScheduler` closes that gap with the standard
inference-server shape:

* **Continuous batching.**  Handler threads submit requests to a
  queue; a single dispatcher thread drains whatever is queued the
  moment it is idle and forms a batch of up to ``max_batch`` lanes.
  An optional collection window (``batch_window_ms``, bounded by each
  member's remaining deadline) trades first-request latency for larger
  batches; the default of 0 keeps sequential latency unchanged.
* **Shape-compatible grouping.**  A batch is partitioned by
  ``(cpu_model, fidelity)`` — the engine keeps one resident SoftWatt
  per shape, and only same-shape lanes can share a lockstep pass
  (window and seed are engine-global).  Each group's uncached Mipsy
  detailed profiles are computed in one SoA prefetch
  (:meth:`EstimationEngine.prefetch_group`); the per-item
  :meth:`~EstimationEngine.estimate` calls that follow hit the warm
  cache.  Groups execute on parallel threads, preserving the
  cross-instance concurrency the per-request path had.
* **Single-flight deduplication.**  Identical in-flight requests —
  same ``(benchmark, disk, cpu_model, fidelity, deadline_s,
  idle_policy)``; seed and window are engine-global — share one
  computation.  The first becomes the *leader* and occupies a lane;
  later arrivals become *followers* parked on the leader's completion
  event.  Every participant of a shared flight receives a
  bit-identical copy of the one reply with ``coalesced: true``; a
  follower whose own deadline expires first gets a per-item 504
  without disturbing the flight.

Failure stays per-item: an invalid payload 400s alone, an expired
deadline 504s alone (queue wait counts against the budget), and a
breaker-tripped detailed tier degrades each lane down the fidelity
ladder inside :meth:`~EstimationEngine.estimate` — a batch never fails
as a unit.  Because batching only changes *when* profiles are computed
(the SoA engine is bit-identical to the scalar core) and degradation
only selects which rung executes, every batched or coalesced response
is bit-identical to the same request served alone.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.serve.engine import (
    EstimateRequest,
    EstimationEngine,
    RequestError,
)

log = logging.getLogger("repro.serve")

_FLIGHT_GRACE_S = 1.0
"""Extra wait a deadline-bound follower grants past its budget before
giving up on the flight — covers clock skew between the follower's
timeout and the dispatcher's own 504 for the leader."""


@dataclass
class _Flight:
    """One deduplicated unit of work: a leader plus any followers."""

    request: EstimateRequest
    key: tuple
    index: int
    arrival: float
    event: threading.Event = field(default_factory=threading.Event)
    reply: dict | None = None
    followers: int = 0
    shared: bool = False
    batched: bool = False
    """True when this flight's profile came out of a lockstep prefetch."""


def _flight_key(request: EstimateRequest) -> tuple:
    return (
        request.benchmark,
        request.disk,
        request.cpu_model,
        request.fidelity,
        request.deadline_s,
        request.idle_policy,
    )


class BatchScheduler:
    """Collect admitted requests into lockstep batches with single-flight
    deduplication; the drop-in execution path between the HTTP handlers
    and :class:`EstimationEngine`."""

    def __init__(
        self,
        engine: EstimationEngine,
        *,
        batch_window_ms: float = 0.0,
        max_batch: int = 16,
        min_lanes: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.engine = engine
        self.batch_window_ms = batch_window_ms
        self.max_batch = max_batch
        self.min_lanes = min_lanes
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: list[_Flight] = []
        self._flights: dict[tuple, _Flight] = {}
        self._stopped = False
        self._submitted = 0
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._batches = 0
        self._occupancy: dict[int, int] = {}
        self._executed: dict[str, dict[str, int]] = {
            "batched": {},
            "solo": {},
        }
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="batch-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Submission (handler threads)
    # ------------------------------------------------------------------

    def submit(self, payload: object, *, index: int = -1) -> dict:
        """Run one request through the batched path; blocks until its
        reply is ready.  Same contract as ``engine.estimate`` plus the
        ``coalesced`` marker on shared flights."""
        waiter = self._register(payload, index=index)
        if isinstance(waiter, dict):
            return waiter
        return self._await(*waiter)

    def submit_many(self, payloads: list, *, index: int = -1) -> list[dict]:
        """Run several requests concurrently through the batched path.

        All items are registered before any is waited on, so the items
        of one ``/estimate/batch`` payload can share lockstep lanes and
        single-flights with each other, not just with other
        connections.  Failures are per-item: each reply carries its own
        status."""
        waiters = [self._register(p, index=index) for p in payloads]
        return [
            waiter if isinstance(waiter, dict) else self._await(*waiter)
            for waiter in waiters
        ]

    def _register(self, payload: object, *, index: int):
        """Join an in-flight twin or enqueue a new leader; returns an
        immediate reply dict for invalid payloads."""
        try:
            request = (
                payload
                if isinstance(payload, EstimateRequest)
                else EstimateRequest.from_payload(payload, index=index)
            )
        except RequestError:
            # Re-validate through the engine so the 400 is counted and
            # shaped exactly like the unbatched path's.
            return self.engine.estimate(payload, index=index)
        key = _flight_key(request)
        now = self._clock()
        with self._cond:
            self._submitted += 1
            flight = None if self._stopped else self._flights.get(key)
            if flight is not None:
                flight.followers += 1
                self._hits += 1
                return flight, request, now, True
            self._misses += 1
            flight = _Flight(request=request, key=key, index=index, arrival=now)
            if self._stopped:
                # No dispatcher left: serve directly, still correct.
                pass
            else:
                self._flights[key] = flight
                self._queue.append(flight)
                self._cond.notify_all()
                return flight, request, now, False
        flight.reply = self.engine.estimate(request, index=index, started=now)
        flight.event.set()
        return flight, request, now, False

    def _await(
        self,
        flight: _Flight,
        request: EstimateRequest,
        arrival: float,
        follower: bool,
    ) -> dict:
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.engine.default_deadline_s
        )
        if follower and deadline_s is not None:
            remaining = deadline_s - (self._clock() - arrival)
            if not flight.event.wait(timeout=remaining + _FLIGHT_GRACE_S):
                return self.engine.deadline_expired_reply(
                    request, started=arrival
                )
        else:
            # The leader's own deadline is enforced inside the engine
            # (queue wait included, via started=arrival).
            flight.event.wait()
        reply = dict(flight.reply)
        reply["coalesced"] = flight.shared
        return reply

    # ------------------------------------------------------------------
    # Dispatch (one daemon thread)
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            try:
                self._run_batch(batch)
            except Exception:  # noqa: BLE001 - waiters must never hang
                log.exception("batch dispatch failed")
                for flight in batch:
                    if not flight.event.is_set():
                        self._finish(
                            flight,
                            {"status": 500, "error": "internal batch failure"},
                        )

    def _collect(self) -> list[_Flight] | None:
        """Drain the queue into one batch, optionally holding the
        collection window open while lanes and deadlines allow."""
        with self._cond:
            while not self._queue:
                if self._stopped:
                    return None
                self._cond.wait()
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
            if self.batch_window_ms <= 0 or len(batch) >= self.max_batch:
                return batch
            window_end = self._clock() + self.batch_window_ms / 1000.0
            while len(batch) < self.max_batch:
                cap = window_end
                for flight in batch:
                    deadline_s = (
                        flight.request.deadline_s
                        if flight.request.deadline_s is not None
                        else self.engine.default_deadline_s
                    )
                    if deadline_s is not None:
                        cap = min(cap, flight.arrival + deadline_s)
                timeout = cap - self._clock()
                if timeout <= 0:
                    break
                self._cond.wait(timeout=timeout)
                room = self.max_batch - len(batch)
                batch.extend(self._queue[:room])
                del self._queue[:room]
                if self._stopped:
                    break
            return batch

    def _run_batch(self, batch: list[_Flight]) -> None:
        with self._cond:
            self._batches += 1
            self._occupancy[len(batch)] = (
                self._occupancy.get(len(batch), 0) + 1
            )
        groups: dict[tuple[str, str], list[_Flight]] = {}
        for flight in batch:
            shape = (flight.request.cpu_model, flight.request.fidelity)
            groups.setdefault(shape, []).append(flight)
        if len(groups) == 1:
            shape, flights = next(iter(groups.items()))
            self._run_group(shape, flights)
            return
        threads = [
            threading.Thread(
                target=self._run_group, args=(shape, flights), daemon=True
            )
            for shape, flights in groups.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def _run_group(
        self, shape: tuple[str, str], flights: list[_Flight]
    ) -> None:
        cpu_model, fidelity = shape
        now = self._clock()
        live = []
        for flight in flights:
            deadline_s = (
                flight.request.deadline_s
                if flight.request.deadline_s is not None
                else self.engine.default_deadline_s
            )
            if deadline_s is not None and now - flight.arrival >= deadline_s:
                # Window wait ate the whole budget: per-item 504, the
                # rest of the group proceeds.
                self._finish(
                    flight,
                    self.engine.deadline_expired_reply(
                        flight.request, started=flight.arrival
                    ),
                )
                continue
            live.append(flight)
        prefetched = set(
            self.engine.prefetch_group(
                cpu_model,
                fidelity,
                [flight.request.benchmark for flight in live],
                min_runs=self.min_lanes,
            )
        )
        for flight in live:
            flight.batched = flight.request.benchmark in prefetched
            reply = self.engine.estimate(
                flight.request, index=flight.index, started=flight.arrival
            )
            self._finish(flight, reply)

    def _finish(self, flight: _Flight, reply: dict) -> None:
        with self._cond:
            self._flights.pop(flight.key, None)
            flight.shared = flight.followers > 0
            self._coalesced += flight.followers
            rung = reply.get("fidelity_used") or "none"
            bucket = self._executed["batched" if flight.batched else "solo"]
            bucket[rung] = bucket.get(rung, 0) + 1
        flight.reply = reply
        flight.event.set()

    # ------------------------------------------------------------------
    # Lifecycle + telemetry
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the dispatcher once the queue is drained.  Submissions
        after close bypass batching and execute directly (correct, just
        unbatched) — drain never strands a waiter."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._dispatcher.join(timeout=60.0)

    def snapshot(self) -> dict:
        with self._cond:
            attempts = self._hits + self._misses
            return {
                "submitted": self._submitted,
                "batches": self._batches,
                "window_ms": self.batch_window_ms,
                "max_batch": self.max_batch,
                "occupancy": {
                    str(size): count
                    for size, count in sorted(self._occupancy.items())
                },
                "coalesced": self._coalesced,
                "single_flight": {
                    "hits": self._hits,
                    "misses": self._misses,
                    "hit_rate": (
                        self._hits / attempts if attempts else 0.0
                    ),
                },
                "executed": {
                    mode: dict(counts)
                    for mode, counts in self._executed.items()
                },
            }
