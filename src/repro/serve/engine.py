"""The serving engine: resident SoftWatt state behind a resilience policy.

One :class:`EstimationEngine` owns the long-lived simulation state the
one-shot CLI pays for on every invocation — warm :class:`SoftWatt`
instances (detailed plus each degraded fidelity rung), their priced
service profiles, and the shared persistent :class:`ProfileCache` —
and answers :class:`EstimateRequest` objects under three policies:

* **deadlines** — each request carries a remaining-time budget that is
  propagated down into ``SoftWatt.task_timeout`` (and from there into
  ``SupervisorPolicy.task_timeout_s``) so a slow structural point
  cannot wedge the worker pool past what the caller will wait for;
* **circuit breaking** — consecutive failures or deadline breaches of
  the detailed tier open a :class:`CircuitBreaker`, after which
  requests skip straight to the degradation ladder
  (``sampled`` → ``atomic``) without paying a doomed detailed attempt;
* **graceful degradation** — every answer states what it is: the
  response carries ``fidelity_used``, a ``degraded`` flag, the breaker
  snapshot, and the serialized :class:`RunReport`.  When even the
  cheapest rung fails, the engine serves the last good ledger for the
  same (benchmark, cpu_model, disk, idle_policy) marked ``stale``.

Crucially, a degraded answer is *bit-identical* to running the same
fidelity rung offline: degradation only selects which rung executes,
never how it executes (the rung's SoftWatt instance is constructed
exactly as ``SoftWatt(fidelity=rung)`` would be).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.campaign import SweepCampaign
from repro.core.report import BenchmarkResult
from repro.core.softwatt import SoftWatt
from repro.resilience.faults import (
    POOL_KILL,
    QUEUE_FLOOD,
    SLOW_REQUEST,
    InjectedFault,
    ServeFaultPlan,
)
from repro.serve.breaker import CircuitBreaker
from repro.workloads.specjvm98 import BENCHMARK_NAMES

DETAILED = "detailed"
LEDGER_ONLY = "ledger"
FIDELITY_RUNGS = (DETAILED, "sampled", "atomic")

_RUN_FIELDS = {
    "benchmark": str,
    "disk": int,
    "cpu_model": str,
    "fidelity": str,
    "deadline_s": (int, float),
    "idle_policy": str,
}


class RequestError(ValueError):
    """A malformed request payload (maps to HTTP 400)."""


@dataclass(frozen=True)
class EstimateRequest:
    """One validated estimation request."""

    benchmark: str
    disk: int = 1
    cpu_model: str = "mxs"
    fidelity: str = DETAILED
    deadline_s: float | None = None
    idle_policy: str = "busywait"
    index: int = -1
    """Request ordinal assigned by the server at admission; -1 (warm-up
    and direct engine calls) never matches a fault spec."""

    @classmethod
    def from_payload(cls, payload: object, *, index: int = -1) -> "EstimateRequest":
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        unknown = set(payload) - set(_RUN_FIELDS)
        if unknown:
            raise RequestError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        if "benchmark" not in payload:
            raise RequestError("request must name a benchmark")
        for name, types in _RUN_FIELDS.items():
            if name in payload and payload[name] is not None:
                value = payload[name]
                if isinstance(value, bool) or not isinstance(value, types):
                    raise RequestError(f"field {name!r} has the wrong type")
        benchmark = payload["benchmark"]
        if benchmark not in BENCHMARK_NAMES:
            raise RequestError(
                f"unknown benchmark {benchmark!r}; choose from "
                f"{', '.join(BENCHMARK_NAMES)}"
            )
        cpu_model = payload.get("cpu_model", "mxs")
        if cpu_model not in ("mxs", "mipsy"):
            raise RequestError("cpu_model must be 'mxs' or 'mipsy'")
        fidelity = payload.get("fidelity", DETAILED)
        if fidelity not in FIDELITY_RUNGS:
            raise RequestError(
                f"fidelity must be one of {', '.join(FIDELITY_RUNGS)}"
            )
        disk = payload.get("disk", 1)
        if not 1 <= disk <= 4:
            raise RequestError("disk must be a configuration number 1-4")
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None and deadline_s < 0:
            raise RequestError("deadline_s must be non-negative")
        idle_policy = payload.get("idle_policy", "busywait")
        if idle_policy not in ("busywait", "halt"):
            raise RequestError("idle_policy must be 'busywait' or 'halt'")
        return cls(
            benchmark=benchmark,
            disk=disk,
            cpu_model=cpu_model,
            fidelity=fidelity,
            deadline_s=None if deadline_s is None else float(deadline_s),
            idle_policy=idle_policy,
            index=index,
        )


@dataclass
class _Instance:
    """One resident SoftWatt plus the lock serialising access to it."""

    softwatt: SoftWatt
    lock: threading.Lock = field(default_factory=threading.Lock)


def _result_payload(result: BenchmarkResult) -> dict:
    return {
        "benchmark": result.name,
        "cpu_model": result.cpu_model,
        "disk_policy": result.disk_policy_name,
        "total_energy_j": result.total_energy_j,
        "disk_energy_j": result.disk_energy_j,
        "duration_s": result.timeline.duration_s,
        "average_power_w": result.average_power_w,
        "peak_power_w": result.peak_power_w,
        "energy_delay_product": result.energy_delay_product,
        "budget_w": result.power_budget(),
        "budget_shares": result.power_budget_shares(),
    }


class EstimationEngine:
    """Resident estimation state + the degradation policy around it."""

    def __init__(
        self,
        *,
        window_instructions: int = 40_000,
        seed: int = 1,
        workers: int = 1,
        cache_dir=None,
        use_cache: bool = True,
        breaker: CircuitBreaker | None = None,
        degrade_ladder: tuple[str, ...] = ("sampled", "atomic"),
        default_deadline_s: float | None = None,
        retries: int = 2,
        fault_plan: ServeFaultPlan | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        for rung in degrade_ladder:
            if rung not in FIDELITY_RUNGS or rung == DETAILED:
                raise ValueError(
                    f"degrade ladder rung {rung!r} must be a sub-detailed "
                    f"fidelity ({', '.join(FIDELITY_RUNGS[1:])})"
                )
        self.window_instructions = window_instructions
        self.seed = seed
        self.workers = workers
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.degrade_ladder = tuple(degrade_ladder)
        self.default_deadline_s = default_deadline_s
        self.retries = retries
        self.fault_plan = fault_plan
        self._clock = clock
        self._sleep = sleep
        self._instances: dict[tuple[str, str], _Instance] = {}
        self._instances_lock = threading.Lock()
        self._sweep_lock = threading.Lock()
        self._last_good: dict[tuple, dict] = {}
        self._counters = {
            "requests": 0,
            "ok": 0,
            "degraded": 0,
            "stale": 0,
            "deadline_expired": 0,
            "failed": 0,
        }
        self._counters_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Resident instances
    # ------------------------------------------------------------------

    def _instance(self, cpu_model: str, fidelity: str) -> _Instance:
        key = (cpu_model, fidelity)
        with self._instances_lock:
            instance = self._instances.get(key)
            if instance is None:
                instance = _Instance(
                    SoftWatt(
                        cpu_model=cpu_model,
                        window_instructions=self.window_instructions,
                        seed=self.seed,
                        workers=self.workers,
                        cache_dir=self.cache_dir,
                        use_cache=self.use_cache,
                        retries=self.retries,
                        # Detailed instances get a pristine config so
                        # cache keys match offline runs exactly.
                        fidelity=None if fidelity == DETAILED else fidelity,
                    )
                )
                self._instances[key] = instance
            return instance

    def warm(self, benchmarks=("jess",), *, cpu_model: str = "mxs") -> int:
        """Pre-simulate benchmarks so first requests are warm; returns
        the number of benchmarks primed."""
        count = 0
        for name in benchmarks:
            reply = self.estimate({"benchmark": name, "cpu_model": cpu_model})
            if reply["status"] == 200:
                count += 1
        return count

    def prefetch_group(
        self,
        cpu_model: str,
        fidelity: str,
        benchmarks,
        *,
        min_runs: int | None = None,
    ) -> list[str]:
        """Batch-profile a shape group's pending lanes in one lockstep
        SoA pass; returns the benchmark names profiled.

        Called by the batch scheduler before it executes a group of
        same-``(cpu_model, fidelity)`` requests: every profile computed
        here is a cache hit for the per-item :meth:`estimate` calls
        that follow, so the group pays one lockstep simulation instead
        of N scalar ones.  Best-effort by design — any failure returns
        ``[]`` and the items simply profile solo under the normal
        degradation policy; a batch never wholly fails here.
        """
        from repro.cpu.batch import (  # noqa: PLC0415 — keep numpy lazy
            batch_min_runs,
            batched_execution,
            profile_benchmarks_batched,
        )

        if cpu_model != "mipsy" or fidelity != DETAILED:
            return []
        if not batched_execution():
            return []
        instance = self._instance(cpu_model, fidelity)
        names = tuple(dict.fromkeys(benchmarks))
        with instance.lock:
            try:
                pairs = instance.softwatt.pending_lanes(names)
                threshold = batch_min_runs() if min_runs is None else min_runs
                if len(pairs) < max(2, threshold):
                    return []
                tasks = [sw.profiler.lane_task(spec) for sw, spec in pairs]
                profiles = profile_benchmarks_batched(tasks)
                for (sw, spec), profile in zip(pairs, profiles):
                    sw.adopt_profile(spec, profile)
                return [spec.name for _, spec in pairs]
            except Exception:  # noqa: BLE001 - items fall back to solo
                return []

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def _count(self, key: str) -> None:
        with self._counters_lock:
            self._counters[key] += 1

    def _fault_action(self, index: int) -> str | None:
        if self.fault_plan is None:
            return None
        return self.fault_plan.action(index)

    def flood_injected(self, index: int) -> bool:
        """True when a ``queue-flood`` fault is planned for this request
        (the admission gate then behaves as if it were full)."""
        return self._fault_action(index) == QUEUE_FLOOD

    def _deadline_for(self, request: EstimateRequest) -> float | None:
        if request.deadline_s is not None:
            return request.deadline_s
        return self.default_deadline_s

    def _execute(
        self,
        request: EstimateRequest,
        fidelity: str,
        remaining_s: float | None,
    ) -> BenchmarkResult:
        """Run one rung under the instance lock, deadline propagated."""
        instance = self._instance(request.cpu_model, fidelity)
        action = self._fault_action(request.index)
        with instance.lock:
            softwatt = instance.softwatt
            previous_timeout = softwatt.task_timeout
            if remaining_s is not None:
                softwatt.task_timeout = (
                    remaining_s
                    if previous_timeout is None
                    else min(previous_timeout, remaining_s)
                )
            try:
                # Faults fire while the lock is held: a slow request
                # therefore also queues everyone behind it (the
                # backpressure the admission gate exists to bound), and
                # a pool-kill takes down exactly the guarded tier.
                if action == SLOW_REQUEST:
                    self._sleep(self.fault_plan.slow_seconds)
                if action == POOL_KILL and fidelity == DETAILED:
                    raise InjectedFault(
                        f"injected pool-kill at request {request.index}"
                    )
                return softwatt.run(
                    request.benchmark,
                    disk=request.disk,
                    idle_policy=request.idle_policy,
                )
            finally:
                softwatt.task_timeout = previous_timeout

    def estimate(
        self,
        payload: object,
        *,
        index: int = -1,
        started: float | None = None,
    ) -> dict:
        """Answer one estimation request; never raises for request-level
        failures — the reply dict carries ``status`` (HTTP semantics),
        ``error`` or ``result``, and the degradation record.

        ``started`` is the clock reading the request's deadline budget
        runs from; the batch scheduler passes arrival time so queue
        wait counts against the deadline like execution time does.
        """
        self._count("requests")
        try:
            request = (
                payload
                if isinstance(payload, EstimateRequest)
                else EstimateRequest.from_payload(payload, index=index)
            )
        except RequestError as error:
            self._count("failed")
            return {"status": 400, "error": str(error)}
        if started is None:
            started = self._clock()
        deadline_s = self._deadline_for(request)

        rungs = [request.fidelity]
        for rung in self.degrade_ladder:
            if FIDELITY_RUNGS.index(rung) > FIDELITY_RUNGS.index(request.fidelity):
                rungs.append(rung)
        degradations: list[dict] = []
        wants_detailed = request.fidelity == DETAILED
        if wants_detailed and not self.breaker.allow():
            rungs = rungs[1:]
            degradations.append(
                {
                    "kind": "breaker-open",
                    "detail": "detailed tier skipped: circuit breaker open",
                }
            )

        attempts = 0
        for rung in rungs:
            remaining = (
                None
                if deadline_s is None
                else deadline_s - (self._clock() - started)
            )
            if remaining is not None and remaining <= 0:
                self._count("deadline_expired")
                if wants_detailed and attempts > 0:
                    # The expensive rung burned the whole budget: that
                    # is a deadline breach the breaker must see.
                    self.breaker.record_failure()
                return self._reply(
                    request,
                    status=504,
                    error=f"deadline of {deadline_s:g}s expired",
                    degradations=degradations,
                    attempts=attempts,
                    started=started,
                )
            attempts += 1
            guarded = rung == DETAILED
            try:
                result = self._execute(request, rung, remaining)
            except Exception as error:  # noqa: BLE001 - degraded + reported
                if guarded:
                    self.breaker.record_failure()
                degradations.append(
                    {
                        "kind": "rung-failed",
                        "detail": f"{rung} rung failed: "
                        f"{type(error).__name__}: {error}",
                    }
                )
                continue
            elapsed = self._clock() - started
            deadline_exceeded = deadline_s is not None and elapsed > deadline_s
            if guarded:
                if deadline_exceeded:
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
            return self._success(
                request,
                result,
                fidelity_used=rung,
                degradations=degradations,
                attempts=attempts,
                started=started,
                deadline_exceeded=deadline_exceeded,
            )

        # Every rung failed: fall back to the last good ledger.
        stale_key = (
            request.benchmark,
            request.cpu_model,
            request.disk,
            request.idle_policy,
        )
        last_good = self._last_good.get(stale_key)
        if last_good is not None:
            degradations.append(
                {
                    "kind": "ledger-only",
                    "detail": "serving last good ledger; every fidelity "
                    "rung failed",
                }
            )
            self._count("ok")
            self._count("degraded")
            self._count("stale")
            return self._reply(
                request,
                status=200,
                result=dict(last_good),
                fidelity_used=LEDGER_ONLY,
                degraded=True,
                stale=True,
                degradations=degradations,
                attempts=attempts,
                started=started,
            )
        return self._reply(
            request,
            status=503,
            error="estimation unavailable: every fidelity rung failed "
            "and no prior answer is cached",
            degradations=degradations,
            attempts=attempts,
            started=started,
        )

    def deadline_expired_reply(
        self,
        request: EstimateRequest,
        *,
        started: float | None = None,
    ) -> dict:
        """A 504 for a request whose budget expired before it executed
        (a coalesced follower timing out while its leader still runs,
        or a batch lane whose window wait consumed the deadline)."""
        self._count("requests")
        self._count("deadline_expired")
        deadline_s = self._deadline_for(request)
        return self._reply(
            request,
            status=504,
            error=f"deadline of {deadline_s:g}s expired",
            degradations=[],
            attempts=0,
            started=started,
        )

    def _success(
        self,
        request: EstimateRequest,
        result: BenchmarkResult,
        *,
        fidelity_used: str,
        degradations: list[dict],
        attempts: int,
        started: float,
        deadline_exceeded: bool,
    ) -> dict:
        payload = _result_payload(result)
        self._last_good[
            (request.benchmark, request.cpu_model, request.disk,
             request.idle_policy)
        ] = payload
        degraded = fidelity_used != request.fidelity
        self._count("ok")
        if degraded:
            self._count("degraded")
        return self._reply(
            request,
            status=200,
            result=payload,
            fidelity_used=fidelity_used,
            degraded=degraded,
            stale=False,
            degradations=degradations,
            attempts=attempts,
            started=started,
            deadline_exceeded=deadline_exceeded,
        )

    def _reply(
        self,
        request: EstimateRequest,
        *,
        status: int,
        result: dict | None = None,
        error: str | None = None,
        fidelity_used: str | None = None,
        degraded: bool = False,
        stale: bool = False,
        degradations: list[dict] | None = None,
        attempts: int = 0,
        started: float | None = None,
        deadline_exceeded: bool = False,
    ) -> dict:
        if status >= 400:
            self._count("failed")
        reply = {
            "status": status,
            "request": {
                "benchmark": request.benchmark,
                "disk": request.disk,
                "cpu_model": request.cpu_model,
                "fidelity": request.fidelity,
                "deadline_s": request.deadline_s,
                "idle_policy": request.idle_policy,
            },
            "fidelity_used": fidelity_used,
            "degraded": degraded,
            "stale": stale,
            "deadline_exceeded": deadline_exceeded,
            "attempts": attempts,
            "elapsed_s": (
                None if started is None else self._clock() - started
            ),
            "breaker": self.breaker.snapshot(),
            "run_report": {"degradations": degradations or []},
        }
        if result is not None:
            reply["result"] = result
        if error is not None:
            reply["error"] = error
        return reply

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------

    def sweep(self, payload: object, *, index: int = -1) -> dict:
        """Answer a sweep request (tier-routed, shares the warm cache).

        Sweeps are serialized under one lock — they are batch work; the
        admission gate, not concurrency, is their backpressure.
        """
        self._count("requests")
        if not isinstance(payload, dict):
            self._count("failed")
            return {"status": 400, "error": "request body must be a JSON object"}
        allowed = {
            "parameter", "values", "benchmark", "disk", "cpu_model",
            "tier", "deadline_s",
        }
        unknown = set(payload) - allowed
        if unknown:
            self._count("failed")
            return {
                "status": 400,
                "error": f"unknown request field(s): "
                f"{', '.join(sorted(unknown))}",
            }
        parameter = payload.get("parameter")
        values = payload.get("values")
        if not isinstance(parameter, str) or not isinstance(values, list):
            self._count("failed")
            return {
                "status": 400,
                "error": "sweep needs 'parameter' (string) and 'values' (list)",
            }
        deadline_s = payload.get("deadline_s", self.default_deadline_s)
        started = self._clock()
        with self._sweep_lock:
            remaining = (
                None
                if deadline_s is None
                else deadline_s - (self._clock() - started)
            )
            if remaining is not None and remaining <= 0:
                self._count("deadline_expired")
                self._count("failed")
                return {
                    "status": 504,
                    "error": f"deadline of {deadline_s:g}s expired",
                }
            campaign = SweepCampaign(
                benchmark=payload.get("benchmark", "jess"),
                disk=payload.get("disk", 2),
                cpu_model=payload.get("cpu_model", "mxs"),
                window_instructions=self.window_instructions,
                seed=self.seed,
                workers=self.workers,
                cache_dir=self.cache_dir,
                use_cache=self.use_cache,
                tier=payload.get("tier"),
                task_timeout=remaining,
                retries=self.retries,
            )
            try:
                result = campaign.run(parameter, values)
            except ValueError as error:
                self._count("failed")
                return {"status": 400, "error": str(error)}
            except Exception as error:  # noqa: BLE001 - reported as 500
                self._count("failed")
                return {
                    "status": 500,
                    "error": f"{type(error).__name__}: {error}",
                }
        self._count("ok")
        return {
            "status": 200,
            "sweep": result.to_dict(),
            "elapsed_s": self._clock() - started,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict | None:
        """Aggregated persistent-cache counters across resident
        instances (one shared directory, per-instance stat objects)."""
        with self._instances_lock:
            instances = list(self._instances.values())
        stats = [
            inst.softwatt.cache.stats.as_dict()
            for inst in instances
            if inst.softwatt.cache is not None
        ]
        if not stats:
            return None
        totals = {key: 0 for key in stats[0]}
        for entry in stats:
            for key, value in entry.items():
                totals[key] += value
        return totals

    def stats(self) -> dict:
        with self._counters_lock:
            counters = dict(self._counters)
        return {
            "counters": counters,
            "breaker": self.breaker.snapshot(),
            "cache": self.cache_stats(),
            "resident_instances": sorted(
                "/".join(key) for key in self._instances
            ),
        }
