"""Circuit breaker guarding the detailed simulation tier.

The detailed tier is the expensive, fragile rung of the fidelity
ladder: a structural point is where worker crashes and deadline
breaches live.  The breaker watches consecutive failures of that tier
and, once ``failure_threshold`` is reached, *opens* — callers stop
attempting detailed runs and fall straight through to the degradation
ladder (``sampled`` → ``atomic`` → ledger-only).  After ``cooldown_s``
the breaker moves to *half-open* and admits exactly one probe request;
a probe success closes the breaker, a probe failure re-opens it and
restarts the cooldown.

The clock is injectable so state transitions are testable without
sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single-probe half-open state."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._resolve_cooldown()
            return self._state

    def allow(self) -> bool:
        """May the caller attempt the guarded (detailed) tier now?

        In half-open state only one caller at a time gets a True (the
        probe); everyone else is told to degrade until the probe's
        verdict lands.
        """
        with self._lock:
            self._resolve_cooldown()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        if self._state != OPEN:
            self.opens += 1
        self._state = OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False

    def _resolve_cooldown(self) -> None:
        """OPEN → HALF_OPEN once the cooldown has elapsed (lock held)."""
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._state = HALF_OPEN
                self._probe_in_flight = False

    def snapshot(self) -> dict:
        with self._lock:
            self._resolve_cooldown()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "opens": self.opens,
            }
