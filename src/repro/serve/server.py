"""The HTTP front-end: admission control, health, and graceful drain.

Stdlib-only (``http.server`` / ``socketserver``).  The server is a
thin, robust shell around :class:`EstimationEngine`:

* **Admission gate.**  At most ``queue_depth`` POST requests are in
  flight; request ``N+1`` is rejected immediately with ``429`` and a
  ``Retry-After`` header instead of queueing unboundedly (backpressure,
  not OOM).  GET endpoints bypass the gate so health checks always
  answer.
* **Request ordinals.**  Every POST is assigned a monotonically
  increasing ordinal *before* the gate check, so a
  :class:`~repro.resilience.faults.ServeFaultPlan` keyed on arrival
  order is deterministic regardless of thread scheduling.
* **Graceful drain.**  SIGTERM/SIGINT (wired in the CLI) call
  :meth:`begin_drain`: the listener stops accepting, ``/readyz`` flips
  to 503 so load balancers steer away, in-flight requests run to
  completion (handler threads are joined, not abandoned), cache stats
  are flushed to the log, and the process exits 0.

A Unix-domain-socket variant (``repro serve --socket``) serves the
same handler for single-host callers.
"""

from __future__ import annotations

import json
import logging
import socket
import socketserver
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer, ThreadingHTTPServer

from repro.serve.batching import BatchScheduler
from repro.serve.engine import EstimationEngine

log = logging.getLogger("repro.serve")

MAX_BODY_BYTES = 1 << 20
"""Reject request bodies past 1 MiB before reading them."""

MAX_BATCH_ITEMS = 256
"""Cap on the number of items in one ``/estimate/batch`` payload."""


class AdmissionGate:
    """A bounded in-flight counter: admission control without a queue.

    ``try_enter`` either admits (incrementing the in-flight count) or
    refuses; refused callers get a 429 and retry later.  There is
    deliberately no waiting room — a waiting room is just an unbounded
    queue with extra steps.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("admission limit must be at least 1")
        self.limit = limit
        self._lock = threading.Lock()
        self._in_flight = 0
        self.admitted = 0
        self.rejected = 0
        self.peak_in_flight = 0

    def try_enter(self) -> bool:
        with self._lock:
            if self._in_flight >= self.limit:
                self.rejected += 1
                return False
            self._in_flight += 1
            self.admitted += 1
            self.peak_in_flight = max(self.peak_in_flight, self._in_flight)
            return True

    def leave(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def force_reject(self) -> None:
        """Count a rejection decided outside the limit check (the
        queue-flood fault injection)."""
        with self._lock:
            self.rejected += 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "limit": self.limit,
                "in_flight": self._in_flight,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "peak_in_flight": self.peak_in_flight,
            }


class EstimationHandler(BaseHTTPRequestHandler):
    """Routes: GET /healthz /readyz /stats; POST /run /sweep
    /estimate/batch."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    timeout = 60.0  # idle keep-alive cap; also bounds drain worst-case

    # -- plumbing -------------------------------------------------------

    def handle(self) -> None:
        # As BaseHTTPRequestHandler.handle, but a draining server stops
        # the keep-alive loop between requests instead of parking in
        # readline() waiting for a next request that must not come.
        self.close_connection = True
        self.handle_one_request()
        while not self.close_connection:
            if self.server.draining.is_set():
                break
            self.handle_one_request()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        log.debug("%s %s", self.address_string(), format % args)

    def address_string(self) -> str:
        # AF_UNIX peers have no (host, port) pair.
        try:
            return super().address_string()
        except (TypeError, IndexError):
            return "unix-socket"

    def _send_json(self, status: int, payload: dict, *, headers=()) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request must carry a JSON body")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        return json.loads(self.rfile.read(length))

    def _discard_body(self) -> None:
        """Consume an unread request body so a rejected POST leaves the
        keep-alive connection parseable for the next request."""
        length = int(self.headers.get("Content-Length") or 0)
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)
        elif length > MAX_BODY_BYTES:
            self.close_connection = True

    # -- GET: health + introspection ------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server: EstimationHTTPServer = self.server
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/readyz":
            if server.draining.is_set():
                self._send_json(503, {"status": "draining"})
            else:
                self._send_json(200, {"status": "ready"})
        elif self.path == "/stats":
            stats = server.engine.stats()
            stats["admission"] = server.gate.snapshot()
            stats["draining"] = server.draining.is_set()
            if server.scheduler is not None:
                stats["batching"] = server.scheduler.snapshot()
            self._send_json(200, stats)
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    # -- POST: estimation -----------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        server: EstimationHTTPServer = self.server
        if self.path not in ("/run", "/sweep", "/estimate/batch"):
            self._discard_body()
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        index = server.next_ordinal()
        if server.draining.is_set():
            self._discard_body()
            self._send_json(503, {"error": "server is draining"})
            return
        flooded = server.engine.flood_injected(index)
        if flooded:
            server.gate.force_reject()
        if flooded or not server.gate.try_enter():
            self._discard_body()
            self._send_json(
                429,
                {
                    "error": "admission queue full",
                    "retry_after_s": server.retry_after_s,
                },
                headers=(("Retry-After", f"{server.retry_after_s:g}"),),
            )
            return
        try:
            try:
                payload = self._read_body()
            except (ValueError, json.JSONDecodeError) as error:
                self._send_json(400, {"error": str(error)})
                return
            if self.path == "/run":
                if server.scheduler is not None:
                    reply = server.scheduler.submit(payload, index=index)
                else:
                    reply = server.engine.estimate(payload, index=index)
            elif self.path == "/estimate/batch":
                reply = self._estimate_batch(server, payload, index)
            else:
                reply = server.engine.sweep(payload, index=index)
            self._send_json(reply["status"], reply)
        except Exception:  # noqa: BLE001 - a handler crash must not kill the server
            log.exception("request %d failed", index)
            try:
                self._send_json(500, {"error": "internal server error"})
            except OSError:
                pass  # client already gone
        finally:
            server.gate.leave()

    @staticmethod
    def _estimate_batch(
        server: "EstimationHTTPServer", payload: object, index: int
    ) -> dict:
        """One HTTP request carrying many estimation items; failures
        are per-item (each entry in ``items`` has its own status)."""
        if not isinstance(payload, list):
            return {
                "status": 400,
                "error": "batch body must be a JSON array of requests",
            }
        if not payload:
            return {"status": 400, "error": "batch body must not be empty"}
        if len(payload) > MAX_BATCH_ITEMS:
            return {
                "status": 400,
                "error": f"batch exceeds {MAX_BATCH_ITEMS} items",
            }
        if server.scheduler is not None:
            items = server.scheduler.submit_many(payload, index=index)
        else:
            items = [
                server.engine.estimate(item, index=index) for item in payload
            ]
        return {"status": 200, "count": len(items), "items": items}


class EstimationHTTPServer(ThreadingHTTPServer):
    """TCP server: threaded handlers that are *joined* on close, so a
    drain returns every in-flight response before the process exits."""

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    request_queue_size = 128  # listen backlog; admission happens per
    # request above, so a connect burst must not be reset at the socket

    def __init__(
        self,
        address,
        engine: EstimationEngine,
        *,
        queue_depth: int = 4,
        retry_after_s: float = 2.0,
        scheduler: BatchScheduler | None = None,
    ) -> None:
        super().__init__(address, EstimationHandler)
        self.engine = engine
        self.scheduler = scheduler
        self.gate = AdmissionGate(queue_depth)
        self.retry_after_s = retry_after_s
        self.draining = threading.Event()
        self._ordinal = -1
        self._ordinal_lock = threading.Lock()
        self._connections: dict[int, socket.socket] = {}
        self._connections_lock = threading.Lock()

    def next_ordinal(self) -> int:
        with self._ordinal_lock:
            self._ordinal += 1
            return self._ordinal

    def finish_request(self, request, client_address) -> None:
        # Track live connections so a drain can nudge idle keep-alive
        # handlers (parked in readline()) awake; without this,
        # server_close() would join their threads forever.
        with self._connections_lock:
            self._connections[id(request)] = request
        try:
            super().finish_request(request, client_address)
        finally:
            with self._connections_lock:
                self._connections.pop(id(request), None)

    def begin_drain(self) -> None:
        """Stop accepting; in-flight requests finish.  Idempotent, and
        safe to call from a signal handler (shutdown() must run on a
        thread other than the serve_forever() thread)."""
        if self.draining.is_set():
            return
        self.draining.set()
        threading.Thread(target=self._drain, daemon=True).start()

    def _drain(self) -> None:
        self.shutdown()  # returns once the accept loop has stopped
        # Shut down the *read* side of every tracked connection: idle
        # keep-alive handlers see EOF and exit; in-flight handlers have
        # already read their request and can still write the response.
        with self._connections_lock:
            connections = list(self._connections.values())
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RD)
            except OSError:
                pass  # already closing

    def drain_summary(self) -> dict:
        summary = {
            "admission": self.gate.snapshot(),
            "cache": self.engine.cache_stats(),
            "counters": self.engine.stats()["counters"],
        }
        if self.scheduler is not None:
            summary["batching"] = self.scheduler.snapshot()
        return summary


class UnixEstimationHTTPServer(EstimationHTTPServer):
    """The same server bound to a Unix domain socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        # HTTPServer.server_bind unpacks (host, port) from getsockname,
        # which a path-typed AF_UNIX name cannot satisfy.
        socketserver.TCPServer.server_bind(self)
        self.server_name = str(self.server_address)
        self.server_port = 0


def serve_forever(server: EstimationHTTPServer) -> dict:
    """Run until drained; returns the drain summary (logged too)."""
    try:
        server.serve_forever()
    finally:
        server.server_close()  # joins in-flight handler threads
        if server.scheduler is not None:
            server.scheduler.close()
    summary = server.drain_summary()
    log.info("drained: %s", json.dumps(summary, sort_keys=True))
    return summary
