"""A minimal stdlib client for the estimation server.

Used by the bench load generator, the CI smoke test, and anyone who
wants typed access without hand-writing ``http.client`` calls.  One
:class:`ServeClient` holds one keep-alive connection; replies come
back as :class:`Reply` (status, parsed JSON payload, headers).
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import socket


@dataclasses.dataclass(frozen=True)
class Reply:
    """One HTTP exchange's outcome."""

    status: int
    payload: dict
    headers: dict

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class _UnixHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection whose transport is a Unix domain socket."""

    def __init__(self, path: str, timeout=None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._unix_path)


class ServeClient:
    """Talk to a running ``repro serve`` over TCP or a Unix socket."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int | None = None,
        socket_path: str | None = None,
        timeout_s: float | None = 60.0,
    ) -> None:
        if (port is None) == (socket_path is None):
            raise ValueError("pass exactly one of port= or socket_path=")
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._timeout_s = timeout_s
        self._connection: http.client.HTTPConnection | None = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            if self._socket_path is not None:
                self._connection = _UnixHTTPConnection(
                    self._socket_path, timeout=self._timeout_s
                )
            else:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout_s
                )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, body: dict | None = None) -> Reply:
        connection = self._connect()
        payload = None if body is None else json.dumps(body).encode()
        headers = {} if payload is None else {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
        }
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # A dropped keep-alive connection is retried once fresh.
            self.close()
            connection = self._connect()
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"raw": raw.decode(errors="replace")}
        return Reply(
            status=response.status,
            payload=decoded,
            headers=dict(response.getheaders()),
        )

    # -- convenience ----------------------------------------------------

    def get(self, path: str) -> Reply:
        return self._request("GET", path)

    def post(self, path: str, body: dict) -> Reply:
        return self._request("POST", path, body)

    def healthz(self) -> Reply:
        return self.get("/healthz")

    def readyz(self) -> Reply:
        return self.get("/readyz")

    def stats(self) -> Reply:
        return self.get("/stats")

    def run(self, benchmark: str, **fields) -> Reply:
        return self.post("/run", {"benchmark": benchmark, **fields})

    def sweep(self, parameter: str, values: list, **fields) -> Reply:
        return self.post(
            "/sweep", {"parameter": parameter, "values": values, **fields}
        )
