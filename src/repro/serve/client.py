"""A minimal stdlib client for the estimation server.

Used by the bench load generator, the CI smoke test, and anyone who
wants typed access without hand-writing ``http.client`` calls.  One
:class:`ServeClient` holds one keep-alive connection; replies come
back as :class:`Reply` (status, parsed JSON payload, headers).

Besides one-at-a-time keep-alive requests, the client speaks the batch
endpoint (:meth:`ServeClient.run_batch` posts a list to
``/estimate/batch`` and yields per-item replies) and true HTTP/1.1
pipelining (:meth:`ServeClient.pipeline` writes several requests
before reading any response).  ``http.client`` cannot pipeline — it
refuses to send while a response is pending, and stacking
``HTTPResponse`` objects on one socket over-reads through their
buffered file wrappers — so the pipelined path writes raw request
bytes on one socket and parses the response stream itself.  Failures
are surfaced per request: a parse error or dropped connection yields
an error :class:`Reply` (status 0) for the affected requests instead
of raising away the replies that did arrive.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import socket


@dataclasses.dataclass(frozen=True)
class Reply:
    """One HTTP exchange's outcome."""

    status: int
    payload: dict
    headers: dict

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class _UnixHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection whose transport is a Unix domain socket."""

    def __init__(self, path: str, timeout=None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._unix_path)


class ServeClient:
    """Talk to a running ``repro serve`` over TCP or a Unix socket."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int | None = None,
        socket_path: str | None = None,
        timeout_s: float | None = 60.0,
    ) -> None:
        if (port is None) == (socket_path is None):
            raise ValueError("pass exactly one of port= or socket_path=")
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._timeout_s = timeout_s
        self._connection: http.client.HTTPConnection | None = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            if self._socket_path is not None:
                self._connection = _UnixHTTPConnection(
                    self._socket_path, timeout=self._timeout_s
                )
            else:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout_s
                )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _raw_socket(self) -> socket.socket:
        """A fresh transport socket outside http.client's state machine
        (the pipelined path drives the wire format itself)."""
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout_s)
            sock.connect(self._socket_path)
            return sock
        return socket.create_connection(
            (self._host, self._port), timeout=self._timeout_s
        )

    def _request(
        self, method: str, path: str, body: dict | list | None = None
    ) -> Reply:
        connection = self._connect()
        payload = None if body is None else json.dumps(body).encode()
        headers = {} if payload is None else {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
        }
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # A dropped keep-alive connection is retried once fresh.
            self.close()
            connection = self._connect()
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"raw": raw.decode(errors="replace")}
        return Reply(
            status=response.status,
            payload=decoded,
            headers=dict(response.getheaders()),
        )

    # -- convenience ----------------------------------------------------

    def get(self, path: str) -> Reply:
        return self._request("GET", path)

    def post(self, path: str, body: dict | list) -> Reply:
        return self._request("POST", path, body)

    # -- pipelining -----------------------------------------------------

    def pipeline(self, posts: "list[tuple[str, dict | list]]") -> list[Reply]:
        """Send several POSTs back-to-back on one fresh connection
        before reading any response (HTTP/1.1 pipelining), then parse
        the replies in order.  A failed read fills the affected reply
        and every later one with a status-0 error Reply instead of
        raising, so callers always get ``len(posts)`` results."""
        if not posts:
            return []
        host = self._host if self._socket_path is None else "localhost"
        chunks = []
        for path, body in posts:
            payload = json.dumps(body).encode()
            chunks.append(
                f"POST {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "\r\n".encode() + payload
            )
        replies: list[Reply] = []
        try:
            sock = self._raw_socket()
        except OSError as error:
            return [
                Reply(
                    status=0,
                    payload={"error": f"connect failed: {error}"},
                    headers={},
                )
                for _ in posts
            ]
        try:
            try:
                sock.sendall(b"".join(chunks))
            except OSError as error:
                return [
                    Reply(
                        status=0,
                        payload={"error": f"pipelined send failed: {error}"},
                        headers={},
                    )
                    for _ in posts
                ]
            reader = sock.makefile("rb")
            try:
                for _ in posts:
                    try:
                        replies.append(self._read_pipelined_reply(reader))
                    except (OSError, ValueError) as error:
                        replies.append(
                            Reply(
                                status=0,
                                payload={
                                    "error": f"pipelined read failed: {error}"
                                },
                                headers={},
                            )
                        )
                        break
            finally:
                reader.close()
        finally:
            sock.close()
        while len(replies) < len(posts):
            replies.append(
                Reply(
                    status=0,
                    payload={"error": "no response received"},
                    headers={},
                )
            )
        return replies

    @staticmethod
    def _read_pipelined_reply(reader) -> Reply:
        status_line = reader.readline()
        if not status_line:
            raise ValueError("connection closed before response")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ValueError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = reader.readline()
            if not line:
                raise ValueError("connection closed inside headers")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip()] = value.strip()
        length = int(headers.get("Content-Length", 0))
        raw = reader.read(length) if length else b""
        if len(raw) != length:
            raise ValueError("connection closed inside body")
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"raw": raw.decode(errors="replace")}
        return Reply(status=status, payload=decoded, headers=headers)

    def healthz(self) -> Reply:
        return self.get("/healthz")

    def readyz(self) -> Reply:
        return self.get("/readyz")

    def stats(self) -> Reply:
        return self.get("/stats")

    def run(self, benchmark: str, **fields) -> Reply:
        return self.post("/run", {"benchmark": benchmark, **fields})

    def run_batch(self, items: list) -> Reply:
        """Post a list of estimation requests to ``/estimate/batch``;
        the reply payload's ``items`` carry per-item statuses."""
        return self.post("/estimate/batch", items)

    def run_pipelined(self, items: list) -> list[Reply]:
        """Fire one ``/run`` per item down a pipelined connection."""
        return self.pipeline([("/run", item) for item in items])

    def sweep(self, parameter: str, values: list, **fields) -> Reply:
        return self.post(
            "/sweep", {"parameter": parameter, "values": values, **fields}
        )
