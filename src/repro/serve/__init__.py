"""Estimation-as-a-service: the resident SoftWatt daemon.

``engine`` answers estimation requests from warm simulator state under
deadlines, a circuit breaker, and a fidelity-degradation ladder;
``batching`` coalesces concurrent requests into lockstep SoA batches
with single-flight deduplication; ``server`` is the stdlib HTTP shell
adding admission control, health endpoints, and graceful drain;
``breaker`` is the reusable circuit breaker; ``client`` is the
matching stdlib client (keep-alive, batch endpoint, pipelining).
Started via ``repro serve`` (see DESIGN.md §13–14).
"""

from repro.serve.batching import BatchScheduler
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import Reply, ServeClient
from repro.serve.engine import (
    EstimateRequest,
    EstimationEngine,
    RequestError,
)
from repro.serve.server import (
    AdmissionGate,
    EstimationHTTPServer,
    UnixEstimationHTTPServer,
    serve_forever,
)

__all__ = [
    "AdmissionGate",
    "BatchScheduler",
    "CircuitBreaker",
    "EstimateRequest",
    "EstimationEngine",
    "EstimationHTTPServer",
    "Reply",
    "RequestError",
    "ServeClient",
    "UnixEstimationHTTPServer",
    "serve_forever",
]
