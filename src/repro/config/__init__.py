"""Configuration for the SoftWatt reproduction.

``SystemConfig.table1()`` is the paper's baseline machine;
``disk_configuration(n)`` selects one of the Section 4 disk policies;
``DEFAULT_TECHNOLOGY`` is the 0.35 um / 3.3 V / 200 MHz design point.
"""

from repro.config.system import (
    KB,
    MB,
    PAGE_SIZE,
    CacheConfig,
    ConfigError,
    CoreConfig,
    MemoryConfig,
    SystemConfig,
    TLBConfig,
)
from repro.config.technology import (
    CLOCK_HZ,
    CYCLE_TIME_S,
    DEFAULT_TECHNOLOGY,
    FEATURE_SIZE_UM,
    VDD,
    Technology,
    switching_energy,
)
from repro.config.diskcfg import (
    ALL_DISK_CONFIGURATIONS,
    MK3003MAN_POWER_W,
    SPINDOWN_TIME_S,
    SPINUP_TIME_S,
    DiskGeometry,
    DiskMode,
    DiskPowerPolicy,
    disk_configuration,
)

__all__ = [
    "KB",
    "MB",
    "PAGE_SIZE",
    "CacheConfig",
    "ConfigError",
    "CoreConfig",
    "MemoryConfig",
    "SystemConfig",
    "TLBConfig",
    "CLOCK_HZ",
    "CYCLE_TIME_S",
    "DEFAULT_TECHNOLOGY",
    "FEATURE_SIZE_UM",
    "VDD",
    "Technology",
    "switching_energy",
    "ALL_DISK_CONFIGURATIONS",
    "MK3003MAN_POWER_W",
    "SPINDOWN_TIME_S",
    "SPINUP_TIME_S",
    "DiskGeometry",
    "DiskMode",
    "DiskPowerPolicy",
    "disk_configuration",
]
