"""System model configuration (Table 1 of the paper).

Every structural parameter SoftWatt exposes is collected here as a
frozen dataclass tree.  ``SystemConfig.table1()`` reproduces the exact
baseline used for the characterisation study; ``single_issue()``
produces the 1-wide configuration used for the Figure 3 comparison.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.config.technology import Technology, DEFAULT_TECHNOLOGY

KB = 1024
MB = 1024 * KB
PAGE_SIZE = 4 * KB
"""Virtual-memory page size in bytes (IRIX on MIPS uses 4 KB pages)."""


class ConfigError(ValueError):
    """A system configuration that cannot be simulated meaningfully.

    Raised by :meth:`SystemConfig.validate` *before* any simulation
    starts, naming the offending field so a sweep script or CLI user
    can fix exactly the right knob.
    """

    def __init__(self, field: str, message: str) -> None:
        self.field = field
        super().__init__(f"{field}: {message}")


def _power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    latency_cycles: int
    write_back: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError(f"cache {self.name}: all geometry fields must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                f"cache {self.name}: size {self.size_bytes} is not divisible by "
                f"line size x associativity"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"cache {self.name}: line size must be a power of two")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"cache {self.name}: set count must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def tag_bits(self) -> int:
        """Tag width assuming a 32-bit physical address space."""
        offset_bits = self.line_bytes.bit_length() - 1
        index_bits = self.num_sets.bit_length() - 1
        return 32 - offset_bits - index_bits


@dataclasses.dataclass(frozen=True)
class TLBConfig:
    """Unified, fully-associative, software-managed TLB (MIPS style)."""

    entries: int = 64
    page_bytes: int = PAGE_SIZE
    software_managed: bool = True
    """When True a miss raises a trap serviced by the kernel ``utlb``
    handler; when False the refill is performed invisibly in hardware
    (the ablation discussed in DESIGN.md)."""
    hardware_refill_cycles: int = 30
    """Refill latency charged when ``software_managed`` is False."""

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        if self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a power of two")


@dataclasses.dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core structural parameters (MXS / R10000-like)."""

    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    window_size: int = 64
    lsq_size: int = 32
    int_registers: int = 34
    fp_registers: int = 32
    int_alus: int = 2
    fp_alus: int = 2
    bht_entries: int = 1024
    btb_entries: int = 1024
    ras_entries: int = 32
    branch_mispredict_penalty: int = 4

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) <= 0:
                raise ValueError(f"core parameter {field.name} must be positive")

    def as_single_issue(self) -> "CoreConfig":
        """The single-issue variant used for the Figure 3 study."""
        return dataclasses.replace(
            self, fetch_width=1, decode_width=1, issue_width=1, commit_width=1
        )


class FidelityTier(str, enum.Enum):
    """Execution fidelity of the profiling stage.

    Mirrors gem5's AtomicSimpleCPU / TimingSimpleCPU / O3CPU ladder:
    every tier produces the same :class:`BenchmarkProfile` shape, so the
    timeline replay and power registry downstream are identical — only
    how the counters and cycle totals are *obtained* changes.

    ``DETAILED``
        The cycle-level mipsy/mxs cores, bit-identical to the golden
        pins.  The only tier allowed to populate golden caches.
    ``SAMPLED``
        SMARTS-style periodic sampling: each period runs a detailed
        warmup (state only) plus a detailed measured window, then skips
        the rest of the period; counters are extrapolated from the
        measured windows.  Cache/TLB/branch-predictor state stays live
        across the whole run.
    ``ATOMIC``
        One functional streaming pass over a slice of each profiling
        chunk — real memory hierarchy, real branch predictor, analytic
        cycle accounting, no per-cycle pipeline modeling — extrapolated
        to the full chunk.
    """

    ATOMIC = "atomic"
    SAMPLED = "sampled"
    DETAILED = "detailed"

    @classmethod
    def parse(cls, value: "FidelityTier | str") -> "FidelityTier":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            choices = ", ".join(tier.value for tier in cls)
            raise ConfigError(
                "fidelity.tier", f"unknown tier {value!r}; choose one of {choices}"
            ) from None


@dataclasses.dataclass(frozen=True)
class FidelityConfig:
    """Knobs for the sub-detailed execution tiers.

    The sampling parameters are expressed in instructions and follow the
    SMARTS vocabulary: out of every ``sample_period`` instructions the
    sampled tier simulates ``warmup`` (discarded, state-carrying) plus
    ``sample_window`` (measured) in detail and fast-forwards the rest.
    The defaults give a ~5.8x sampling ratio (7000 / (300 + 900)).
    """

    tier: FidelityTier = FidelityTier.DETAILED
    sample_period: int = 7000
    sample_window: int = 900
    warmup: int = 300


@dataclasses.dataclass(frozen=True)
class MemoryConfig:
    """Main-memory parameters."""

    size_bytes: int = 128 * MB
    access_latency_cycles: int = 60
    """L2-miss to data-return latency in core cycles."""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.access_latency_cycles <= 0:
            raise ValueError("memory parameters must be positive")


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """The full Table 1 system model."""

    core: CoreConfig
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    tlb: TLBConfig
    memory: MemoryConfig
    technology: Technology = DEFAULT_TECHNOLOGY
    fidelity: FidelityConfig = FidelityConfig()

    @classmethod
    def table1(cls) -> "SystemConfig":
        """The paper's baseline configuration (Table 1)."""
        return cls(
            core=CoreConfig(),
            l1i=CacheConfig(
                name="L1I",
                size_bytes=32 * KB,
                line_bytes=64,
                associativity=2,
                latency_cycles=1,
                write_back=False,
            ),
            l1d=CacheConfig(
                name="L1D",
                size_bytes=32 * KB,
                line_bytes=64,
                associativity=2,
                latency_cycles=1,
            ),
            l2=CacheConfig(
                name="L2",
                size_bytes=1 * MB,
                line_bytes=128,
                associativity=2,
                latency_cycles=8,
            ),
            tlb=TLBConfig(),
            memory=MemoryConfig(),
        )

    def validate(self) -> "SystemConfig":
        """Cross-field validation; raises :class:`ConfigError`.

        The per-dataclass ``__post_init__`` checks catch locally absurd
        values at construction; this method checks the constraints that
        span fields (indexing geometry, hierarchy ordering, technology
        sanity) and is wired into :class:`~repro.core.softwatt.SoftWatt`
        and the CLI so a bad sweep value fails *before* any simulation
        starts, naming the offending field.  Returns ``self`` so it can
        be chained.
        """
        for attr in ("l1i", "l1d", "l2"):
            cache: CacheConfig = getattr(self, attr)
            if not _power_of_two(cache.line_bytes):
                raise ConfigError(
                    f"{attr}.line_bytes",
                    f"cache line size must be a power of two, got "
                    f"{cache.line_bytes}",
                )
            if not _power_of_two(cache.associativity):
                raise ConfigError(
                    f"{attr}.associativity",
                    f"associativity must be a power of two, got "
                    f"{cache.associativity}",
                )
            if cache.latency_cycles <= 0:
                raise ConfigError(
                    f"{attr}.latency_cycles",
                    f"latency must be positive, got {cache.latency_cycles}",
                )
            if cache.line_bytes > cache.size_bytes:
                raise ConfigError(
                    f"{attr}.line_bytes",
                    f"one line ({cache.line_bytes} B) larger than the cache "
                    f"({cache.size_bytes} B)",
                )
        for attr in ("l1i", "l1d"):
            l1: CacheConfig = getattr(self, attr)
            if l1.line_bytes > self.l2.line_bytes:
                raise ConfigError(
                    f"{attr}.line_bytes",
                    f"L1 line ({l1.line_bytes} B) wider than the L2 line "
                    f"({self.l2.line_bytes} B) breaks inclusion",
                )
            if l1.latency_cycles >= self.l2.latency_cycles:
                raise ConfigError(
                    f"{attr}.latency_cycles",
                    f"L1 latency ({l1.latency_cycles}) must be below the L2 "
                    f"latency ({self.l2.latency_cycles})",
                )
        if self.l2.latency_cycles >= self.memory.access_latency_cycles:
            raise ConfigError(
                "l2.latency_cycles",
                f"L2 latency ({self.l2.latency_cycles}) must be below the "
                f"memory latency ({self.memory.access_latency_cycles})",
            )
        if self.tlb.entries <= 0:
            raise ConfigError(
                "tlb.entries", f"TLB needs at least one entry, got "
                f"{self.tlb.entries}"
            )
        if not _power_of_two(self.tlb.page_bytes):
            raise ConfigError(
                "tlb.page_bytes",
                f"page size must be a power of two, got {self.tlb.page_bytes}",
            )
        if self.tlb.hardware_refill_cycles <= 0:
            raise ConfigError(
                "tlb.hardware_refill_cycles",
                f"refill latency must be positive, got "
                f"{self.tlb.hardware_refill_cycles}",
            )
        if self.tlb.page_bytes > self.memory.size_bytes:
            raise ConfigError(
                "tlb.page_bytes",
                f"one page ({self.tlb.page_bytes} B) larger than main memory "
                f"({self.memory.size_bytes} B)",
            )
        technology = self.technology
        if technology.vdd <= 0:
            raise ConfigError(
                "technology.vdd", f"supply voltage must be positive, got "
                f"{technology.vdd}"
            )
        if technology.clock_hz <= 0:
            raise ConfigError(
                "technology.clock_hz",
                f"clock frequency must be positive, got {technology.clock_hz}",
            )
        if technology.calibration < 0:
            raise ConfigError(
                "technology.calibration",
                f"calibration scale would produce negative energies: "
                f"{technology.calibration}",
            )
        if technology.feature_size_um <= 0:
            raise ConfigError(
                "technology.feature_size_um",
                f"feature size must be positive, got "
                f"{technology.feature_size_um}",
            )
        fidelity = self.fidelity
        if not isinstance(fidelity, FidelityConfig):
            raise ConfigError(
                "fidelity", f"expected a FidelityConfig, got {type(fidelity).__name__}"
            )
        if not isinstance(fidelity.tier, FidelityTier):
            raise ConfigError(
                "fidelity.tier",
                f"expected a FidelityTier, got {fidelity.tier!r} "
                f"(use FidelityTier.parse)",
            )
        if fidelity.sample_window <= 0:
            raise ConfigError(
                "fidelity.sample_window",
                f"measured window must be positive, got {fidelity.sample_window}",
            )
        if fidelity.warmup < 0:
            raise ConfigError(
                "fidelity.warmup",
                f"warmup length cannot be negative, got {fidelity.warmup}",
            )
        if fidelity.sample_period < fidelity.warmup + fidelity.sample_window:
            raise ConfigError(
                "fidelity.sample_period",
                f"period ({fidelity.sample_period}) must cover warmup + window "
                f"({fidelity.warmup} + {fidelity.sample_window}); a period equal "
                f"to warmup + window degenerates to the detailed tier",
            )
        return self

    def single_issue(self) -> "SystemConfig":
        """The 1-wide MXS configuration used in Figure 3."""
        return dataclasses.replace(self, core=self.core.as_single_issue())

    def with_hardware_tlb(self) -> "SystemConfig":
        """Ablation variant: hardware TLB refill, no utlb service."""
        return dataclasses.replace(
            self, tlb=dataclasses.replace(self.tlb, software_managed=False)
        )

    def with_fidelity(
        self,
        fidelity: FidelityConfig | FidelityTier | str,
        *,
        sample_period: int | None = None,
        sample_window: int | None = None,
        warmup: int | None = None,
    ) -> "SystemConfig":
        """Return a copy running at the given fidelity tier.

        ``fidelity`` may be a full :class:`FidelityConfig`, a
        :class:`FidelityTier`, or a tier name; the keyword overrides
        adjust individual sampling parameters on top.
        """
        if isinstance(fidelity, FidelityConfig):
            resolved = fidelity
        else:
            resolved = dataclasses.replace(
                self.fidelity, tier=FidelityTier.parse(fidelity)
            )
        overrides = {
            name: value
            for name, value in (
                ("sample_period", sample_period),
                ("sample_window", sample_window),
                ("warmup", warmup),
            )
            if value is not None
        }
        if overrides:
            resolved = dataclasses.replace(resolved, **overrides)
        return dataclasses.replace(self, fidelity=resolved)
