"""Process-technology constants for the analytical power models.

SoftWatt targets the MIPS R10000 design point of Table 1 in the paper:
0.35 um feature size, 3.3 V supply, 200 MHz clock.  The analytical
models (Kamble & Ghose for caches, Wattch-style array models, the
Duarte clock-network model) are all capacitance-based:

    E_access = 0.5 * C_switched * Vdd^2 * activity

The per-unit-length and per-device capacitances below are in the range
published for 0.35 um processes (CACTI 1/2 and the Wattch technology
files).  Because the paper's own validation admits a deliberate margin
("SoftWatt reports 25.3 W" against the 30 W datasheet maximum), the
absolute magnitude of our models is anchored the same way: a single
technology-wide calibration factor (``CALIBRATION``) is chosen so that
the R10000 maximum-power validation of Section 2 reproduces ~25.3 W.
All *relative* energies between units come from the geometry-driven
models themselves.
"""

from __future__ import annotations

import dataclasses

# ---------------------------------------------------------------------------
# Base design point (Table 1).
# ---------------------------------------------------------------------------

FEATURE_SIZE_UM: float = 0.35
"""Process feature size in micrometres."""

VDD: float = 3.3
"""Supply voltage in volts."""

CLOCK_HZ: float = 200e6
"""Core clock frequency in hertz (200 MHz)."""

CYCLE_TIME_S: float = 1.0 / CLOCK_HZ
"""Duration of one clock cycle in seconds."""

# ---------------------------------------------------------------------------
# Capacitance constants (0.35 um class values).
#
# These follow the parameterisation used by CACTI and Wattch: wire
# capacitance per micrometre of metal, plus lumped gate/diffusion
# capacitances for the regular structures that dominate array energy.
# ---------------------------------------------------------------------------

C_METAL_PER_UM: float = 0.275e-15
"""Wire capacitance per um of metal (farads)."""

C_GATE_PER_UM_WIDTH: float = 1.95e-15
"""Gate capacitance per um of transistor width (farads)."""

C_DIFF_PER_UM_WIDTH: float = 1.25e-15
"""Drain/source diffusion capacitance per um of transistor width."""

CELL_WIDTH_UM: float = 2.5 * FEATURE_SIZE_UM * 10.0
"""Physical width of one SRAM cell in micrometres (RAM cell pitch)."""

CELL_HEIGHT_UM: float = 2.0 * FEATURE_SIZE_UM * 10.0
"""Physical height of one SRAM cell in micrometres."""

C_BITLINE_PER_CELL: float = 4.4e-15
"""Bitline capacitance contributed by each attached cell (farads)."""

C_WORDLINE_PER_CELL: float = 3.0e-15
"""Wordline capacitance contributed by each attached cell (farads)."""

C_SENSE_AMP: float = 70e-15
"""Lumped sense-amplifier input capacitance per bitline pair."""

C_PRECHARGE_PER_BITLINE: float = 30e-15
"""Precharge driver capacitance per bitline."""

C_DECODER_PER_ROW: float = 10e-15
"""Row-decoder capacitance contribution per decoded row."""

C_OUTPUT_DRIVER_PER_BIT: float = 95e-15
"""Output driver + local data bus capacitance per bit read out."""

C_TAG_COMPARATOR_PER_BIT: float = 18e-15
"""Tag comparator XOR/match-line capacitance per compared bit."""

C_CAM_MATCHLINE_PER_BIT: float = 9.5e-15
"""CAM matchline capacitance per stored bit (associative searches)."""

C_LATCH_PER_BIT: float = 14e-15
"""Clocked latch capacitance per pipeline-latch bit (clock loading)."""

C_FU_INT: float = 80e-12
"""Lumped switched capacitance of one integer ALU operation."""

C_FU_FP: float = 700e-12
"""Lumped switched capacitance of one FP unit operation."""

C_RESULT_BUS_PER_BIT_MM: float = 275e-15
"""Result-bus wire capacitance per bit per millimetre of run
(0.275 fF/um of metal)."""

DIE_SIZE_MM: float = 16.6
"""R10000 die edge length in millimetres (~17 x 18 mm die)."""

DRAM_ENERGY_PER_ACCESS_J: float = 9.2e-9
"""Energy per main-memory (DRAM page) access, board-level, in joules.

High relative to on-chip structures, as in the paper: L2 and memory
have a high per-access cost, which produces the steep memory-power
ramp during cold-start misses (Section 3.2)."""

CALIBRATION: float = 2.267
"""Global technology calibration factor (see module docstring).

Chosen so that ``repro.power.processor.r10000_max_power()`` reports
approximately 25.3 W, the figure SoftWatt itself reports against the
30 W R10000 datasheet maximum."""


def switching_energy(capacitance_f: float, vdd: float = VDD) -> float:
    """Return the energy in joules of one full swing of ``capacitance_f``.

    The canonical CMOS dynamic-energy expression ``0.5 * C * Vdd^2``,
    scaled by the technology calibration factor.
    """
    if capacitance_f < 0.0:
        raise ValueError(f"capacitance must be non-negative, got {capacitance_f}")
    return 0.5 * capacitance_f * vdd * vdd * CALIBRATION


@dataclasses.dataclass(frozen=True)
class Technology:
    """A bundled, overridable view of the technology design point.

    The defaults reproduce the paper's Table 1 design point.  Tests and
    ablation benchmarks construct variants (e.g. a lower ``vdd``) and
    pass them to the power models explicitly.
    """

    feature_size_um: float = FEATURE_SIZE_UM
    vdd: float = VDD
    clock_hz: float = CLOCK_HZ
    calibration: float = CALIBRATION

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.clock_hz

    def switching_energy(self, capacitance_f: float) -> float:
        """Energy of one full swing of ``capacitance_f`` at this design point."""
        if capacitance_f < 0.0:
            raise ValueError(f"capacitance must be non-negative, got {capacitance_f}")
        return 0.5 * capacitance_f * self.vdd * self.vdd * self.calibration

    def energy_to_average_power(self, energy_j: float, cycles: int) -> float:
        """Convert an energy total over ``cycles`` cycles to average watts."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        return energy_j / (cycles * self.cycle_time_s)


DEFAULT_TECHNOLOGY = Technology()
"""The paper's design point: 0.35 um, 3.3 V, 200 MHz."""
