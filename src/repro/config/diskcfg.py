"""Disk model configuration.

Two layers, as in the paper (Section 2):

* a timing model in the mould of the SimOS HP97560 disk (seek,
  rotation, transfer), and
* the Toshiba MK3003MAN operating-modes layer with the power values of
  Figure 2 and 5-second spin-up/spin-down transitions.

The four power-management configurations evaluated in Section 4 are
constructed by :func:`disk_configuration`.
"""

from __future__ import annotations

import dataclasses
import enum


class DiskMode(enum.Enum):
    """Operating modes of the MK3003MAN state machine (Figure 2)."""

    SLEEP = "sleep"
    STANDBY = "standby"
    IDLE = "idle"
    ACTIVE = "active"
    SEEK = "seek"
    SPINUP = "spinup"
    SPINDOWN = "spindown"


MK3003MAN_POWER_W: dict[DiskMode, float] = {
    DiskMode.SLEEP: 0.15,
    DiskMode.IDLE: 1.6,
    DiskMode.STANDBY: 0.35,
    DiskMode.ACTIVE: 3.2,
    DiskMode.SEEK: 4.1,
    DiskMode.SPINUP: 4.2,
    # The paper assumes the spin-down operation consumes no power.
    DiskMode.SPINDOWN: 0.0,
}
"""Per-mode power draw in watts, exactly the Figure 2 table."""

SPINUP_TIME_S: float = 5.0
"""Spin-up duration (Figure 2: '5 Sec.')."""

SPINDOWN_TIME_S: float = 5.0
"""Spin-down duration; the paper assumes spin up and spin down take the
same amount of time."""


@dataclasses.dataclass(frozen=True)
class DiskGeometry:
    """Timing parameters of the underlying HP97560-class mechanism.

    The HP97560 is a 5400 RPM, 1.3 GB SCSI disk whose measured seek
    curve was published with the original SimOS/DiskSim models; the
    values here follow that characterisation.
    """

    rpm: float = 5400.0
    cylinders: int = 1962
    sectors_per_track: int = 72
    sector_bytes: int = 512
    min_seek_ms: float = 3.24
    avg_seek_ms: float = 13.5
    max_seek_ms: float = 26.0
    controller_overhead_ms: float = 2.2

    def __post_init__(self) -> None:
        if self.rpm <= 0 or self.cylinders <= 0:
            raise ValueError("disk geometry values must be positive")
        if not self.min_seek_ms <= self.avg_seek_ms <= self.max_seek_ms:
            raise ValueError("seek times must satisfy min <= avg <= max")

    @property
    def rotation_time_s(self) -> float:
        """One full platter rotation, in seconds."""
        return 60.0 / self.rpm

    @property
    def track_bytes(self) -> int:
        """Bytes per track."""
        return self.sectors_per_track * self.sector_bytes

    @property
    def transfer_rate_bytes_per_s(self) -> float:
        """Media transfer rate in bytes per second."""
        return self.track_bytes / self.rotation_time_s


@dataclasses.dataclass(frozen=True)
class DiskPowerPolicy:
    """A disk power-management policy (Section 4 configurations).

    ``conventional`` models the baseline disk of Section 3: no mode
    transitions at all, the platter consumes ACTIVE power whenever it is
    not seeking or transferring.  When ``conventional`` is False the
    disk drops to IDLE immediately after each request completes, and if
    ``spindown_threshold_s`` is set it spins down to STANDBY after that
    much disk inactivity.
    """

    name: str
    conventional: bool = False
    spindown_threshold_s: float | None = None

    def __post_init__(self) -> None:
        if self.conventional and self.spindown_threshold_s is not None:
            raise ValueError("a conventional disk cannot have a spin-down threshold")
        if self.spindown_threshold_s is not None and self.spindown_threshold_s <= 0:
            raise ValueError("spin-down threshold must be positive")


def disk_configuration(number: int) -> DiskPowerPolicy:
    """Return one of the paper's four disk configurations (Section 4).

    1. baseline / conventional: ACTIVE whenever not seeking,
    2. IDLE mode after each request, no STANDBY,
    3. IDLE plus STANDBY with a 2 s spin-down threshold,
    4. IDLE plus STANDBY with a 4 s spin-down threshold.
    """
    policies = {
        1: DiskPowerPolicy(name="baseline", conventional=True),
        2: DiskPowerPolicy(name="idle-only"),
        3: DiskPowerPolicy(name="spindown-2s", spindown_threshold_s=2.0),
        4: DiskPowerPolicy(name="spindown-4s", spindown_threshold_s=4.0),
    }
    if number not in policies:
        raise ValueError(f"disk configuration must be 1-4, got {number}")
    return policies[number]


ALL_DISK_CONFIGURATIONS: tuple[int, ...] = (1, 2, 3, 4)
"""Configuration numbers evaluated in Figure 9."""
