"""Fault-tolerant execution layer for SoftWatt simulation campaigns.

``supervisor`` runs independent tasks under per-task timeouts, bounded
deterministic retries, and ``BrokenProcessPool`` recovery; ``faults``
injects crashes, hangs, errors, and file corruption at controlled,
seeded points so every recovery path is testable; ``runreport`` is the
structured outcome record attached to suite results and surfaced by the
CLI (``--strict`` / ``--best-effort``).
"""

from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ServeFaultPlan,
    ServeFaultSpec,
    corrupt_file,
    truncate_file,
)
from repro.resilience.runreport import (
    Degradation,
    ReportedMapping,
    RunReport,
    TaskRecord,
)
from repro.resilience.supervisor import (
    SupervisionInterrupted,
    SupervisorPolicy,
    TaskExecutionError,
    supervised_map,
)

__all__ = [
    "Degradation",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ReportedMapping",
    "RunReport",
    "ServeFaultPlan",
    "ServeFaultSpec",
    "SupervisionInterrupted",
    "SupervisorPolicy",
    "TaskExecutionError",
    "TaskRecord",
    "corrupt_file",
    "supervised_map",
    "truncate_file",
]
