"""A supervising executor for the profiling fan-out.

``pool.map`` is the wrong primitive for long simulation campaigns: one
crashed worker throws away every completed profile, a hung task stalls
the whole suite forever, and a failed pool silently re-runs *all* work
serially.  :func:`supervised_map` replaces it with a small supervisor
loop built on individually tracked futures:

* **Per-task wall-clock timeouts.**  A task that exceeds
  ``task_timeout_s`` is abandoned, its (possibly stuck) worker pool is
  replaced, and the task is retried.  In-flight victims of the restart
  are requeued without being charged an attempt.
* **Bounded retries with deterministic backoff.**  Each task gets
  ``retries + 1`` attempts; the delay before attempt *n* is
  ``backoff_base_s * backoff_factor**(n - 2)`` — a pure function of the
  attempt number, so recovery schedules are reproducible.
* **``BrokenProcessPool`` recovery.**  When a worker dies, completed
  results are kept, only the unfinished tasks are requeued into a fresh
  pool, and after ``max_pool_rebuilds`` rebuilds the supervisor degrades
  to serial execution for the remainder — never re-running a task that
  already produced a result.
* **A structured record.**  Every outcome lands in a
  :class:`~repro.resilience.runreport.RunReport`; every degradation is
  also routed through :func:`repro.stats.simlog.log_degradation` so it
  is visible, not silent.

Tasks must be independent and idempotent (true of the profiling tasks:
each builds fresh machine state from its spec and seed), which is what
makes retries and requeues bit-identical to a clean run.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import hashlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

from repro.resilience.faults import FaultPlan
from repro.resilience.runreport import (
    STATUS_FAILED,
    STATUS_OK,
    RunReport,
    TaskRecord,
)
from repro.stats.simlog import log_degradation

_T = TypeVar("_T")
_R = TypeVar("_R")

_UNSET = object()


class TaskExecutionError(RuntimeError):
    """A task exhausted its retries (raised unless ``best_effort``)."""

    def __init__(self, message: str, report: RunReport) -> None:
        super().__init__(message)
        self.report = report


class SupervisionInterrupted(KeyboardInterrupt):
    """Ctrl-C arrived mid-supervision; ``report`` holds the partial
    outcome so callers (the CLI) can summarise what completed."""

    def __init__(self, report: RunReport) -> None:
        super().__init__()
        self.report = report


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs governing retries, timeouts, and degradation."""

    task_timeout_s: float | None = None
    """Wall-clock budget per task attempt (pool mode only; a serial
    in-process task cannot be interrupted).  None disables timeouts."""

    retries: int = 2
    """Re-executions allowed per task after its first attempt."""

    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0

    max_pool_rebuilds: int = 2
    """Pool replacements (crash or timeout) before degrading to serial."""

    best_effort: bool = False
    """When True, exhausted tasks yield ``None`` results instead of
    raising :class:`TaskExecutionError`."""

    backoff_jitter: float = 0.0
    """Spread each backoff delay by up to ±``jitter/2`` of itself so a
    fleet of clients retrying against one server desynchronises.  The
    spread is a *pure function* of ``(jitter_seed, task index,
    attempt)`` — hash-derived, no RNG state — so schedules stay
    reproducible.  0.0 (default) keeps the exact classic delays."""

    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task timeout must be positive (or None)")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def backoff_s(self, attempt: int, index: int = 0) -> float:
        """Deterministic delay before 1-based ``attempt`` (0 for the first)."""
        if attempt <= 1 or self.backoff_base_s == 0.0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 2)
        if self.backoff_jitter == 0.0:
            return delay
        digest = hashlib.sha256(
            f"{self.jitter_seed}:{index}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return delay * (1.0 + self.backoff_jitter * (unit - 0.5))


def _invoke(fn, item, fault_plan, index, attempt):
    """Child-process task entry: inject planned faults, then run."""
    if fault_plan is not None:
        fault_plan.apply(index, attempt, in_child=True)
    return fn(item)


class _Supervision:
    """Mutable state of one :func:`supervised_map` run."""

    def __init__(
        self,
        fn: Callable,
        items: list,
        labels: list[str],
        policy: SupervisorPolicy,
        fault_plan: FaultPlan | None,
    ) -> None:
        self.fn = fn
        self.items = items
        self.labels = labels
        self.policy = policy
        self.fault_plan = fault_plan
        self.report = RunReport()
        self.results: list = [_UNSET] * len(items)
        self.attempts = [0] * len(items)
        self.pending: collections.deque[int] = collections.deque(range(len(items)))

    # -- bookkeeping ----------------------------------------------------

    def degrade(self, kind: str, detail: str) -> None:
        self.report.add_degradation(kind, detail)
        log_degradation(f"{kind}: {detail}")

    def _complete(self, index: int, value, duration_s: float) -> None:
        self.results[index] = value
        self.report.record_task(
            TaskRecord(
                index=index,
                label=self.labels[index],
                status=STATUS_OK,
                attempts=self.attempts[index],
                duration_s=duration_s,
            )
        )

    def _fail(self, index: int, error: str, duration_s: float) -> None:
        self.report.record_task(
            TaskRecord(
                index=index,
                label=self.labels[index],
                status=STATUS_FAILED,
                attempts=self.attempts[index],
                duration_s=duration_s,
                error=error,
            )
        )
        self.degrade(
            "task-failed",
            f"task {self.labels[index]} failed after "
            f"{self.attempts[index]} attempt(s): {error}",
        )

    def _retry_or_fail(self, index: int, error: str, duration_s: float) -> None:
        if self.attempts[index] >= self.policy.max_attempts:
            self._fail(index, error, duration_s)
        else:
            self.pending.append(index)

    def _sleep_backoff(self, index: int) -> None:
        delay = self.policy.backoff_s(self.attempts[index], index)
        if delay > 0:
            time.sleep(delay)

    def dispatch(self, runner, *args) -> None:
        """Run an execution strategy, converting Ctrl-C into
        :class:`SupervisionInterrupted` carrying the partial report."""
        try:
            runner(*args)
        except KeyboardInterrupt:
            self.report.tasks.sort(key=lambda task: task.index)
            self.degrade(
                "interrupted",
                f"interrupted by user with {len(self.report.completed)} of "
                f"{len(self.items)} task(s) completed",
            )
            raise SupervisionInterrupted(self.report) from None

    # -- serial execution ----------------------------------------------

    def run_serial(self, indices) -> None:
        for index in indices:
            while True:
                self.attempts[index] += 1
                self._sleep_backoff(index)
                start = time.monotonic()
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.apply(
                            index, self.attempts[index], in_child=False
                        )
                    value = self.fn(self.items[index])
                except Exception as error:  # noqa: BLE001 - retried/reported
                    elapsed = time.monotonic() - start
                    if self.attempts[index] >= self.policy.max_attempts:
                        self._fail(
                            index, f"{type(error).__name__}: {error}", elapsed
                        )
                        break
                else:
                    self._complete(index, value, time.monotonic() - start)
                    break

    # -- pool execution -------------------------------------------------

    def run_pool(self, context, workers: int) -> None:
        rebuilds = 0
        while self.pending:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(self.pending)), mp_context=context
            )
            try:
                rebuild_needed = self._drain(pool, workers)
            finally:
                self._shutdown(pool)
            if not rebuild_needed:
                return
            rebuilds += 1
            if rebuilds > self.policy.max_pool_rebuilds:
                remaining = list(self.pending)
                self.pending.clear()
                self.report.serial_fallback = True
                self.degrade(
                    "serial-fallback",
                    f"worker pool replaced {rebuilds} time(s); finishing "
                    f"{len(remaining)} task(s) serially",
                )
                self.run_serial(remaining)
                return

    def _drain(self, pool, workers: int) -> bool:
        """Feed the pool until done; True means the pool must be replaced."""
        timeout = self.policy.task_timeout_s
        running: dict = {}  # future -> (index, submitted_at)
        while self.pending or running:
            # Keep at most ``workers`` futures outstanding so a queued
            # task never starts its wall clock before a worker is free.
            while self.pending and len(running) < workers:
                index = self.pending.popleft()
                self.attempts[index] += 1
                self._sleep_backoff(index)
                try:
                    future = pool.submit(
                        _invoke,
                        self.fn,
                        self.items[index],
                        self.fault_plan,
                        index,
                        self.attempts[index],
                    )
                except BrokenProcessPool:
                    self.attempts[index] -= 1
                    self.pending.appendleft(index)
                    self._handle_pool_break(running)
                    return True
                running[future] = (index, time.monotonic())

            wait_s = None
            if timeout is not None:
                oldest = min(at for _, at in running.values())
                wait_s = max(0.0, oldest + timeout - time.monotonic())
            done, _ = wait(
                list(running), timeout=wait_s, return_when=FIRST_COMPLETED
            )

            broken = False
            for future in done:
                index, submitted_at = running.pop(future)
                elapsed = time.monotonic() - submitted_at
                try:
                    value = future.result()
                except BrokenProcessPool:
                    broken = True
                    self._retry_or_fail(index, "worker process crashed", elapsed)
                except Exception as error:  # noqa: BLE001 - retried/reported
                    self._retry_or_fail(
                        index, f"{type(error).__name__}: {error}", elapsed
                    )
                else:
                    self._complete(index, value, elapsed)
            if broken:
                self._handle_pool_break(running)
                return True
            if done:
                continue

            # wait() timed out: at least one running task blew its budget.
            now = time.monotonic()
            expired = [
                (future, index, at)
                for future, (index, at) in running.items()
                if now - at >= timeout - 1e-3
            ]
            if not expired:
                continue
            for future, index, at in expired:
                running.pop(future)
                self.degrade(
                    "task-timeout",
                    f"task {self.labels[index]} exceeded {timeout:g}s "
                    f"(attempt {self.attempts[index]}); restarting worker pool",
                )
                self._retry_or_fail(
                    index, f"timed out after {timeout:g}s", now - at
                )
            # The expired tasks' workers may be stuck; replace the pool.
            # In-flight victims get their attempt refunded.
            for future, (index, at) in running.items():
                self.attempts[index] -= 1
                self.pending.appendleft(index)
            self.report.pool_restarts += 1
            return True
        return False

    def _handle_pool_break(self, running: dict) -> None:
        """Harvest what survived a broken pool and requeue the rest."""
        for future, (index, submitted_at) in running.items():
            elapsed = time.monotonic() - submitted_at
            try:
                # A future that completed before the break still holds
                # its result; a dead one raises BrokenProcessPool (or a
                # cancellation/timeout error) and is requeued.
                value = future.result(timeout=0)
            except Exception:  # noqa: BLE001
                self._retry_or_fail(index, "worker process crashed", elapsed)
            else:
                self._complete(index, value, elapsed)
        running.clear()
        self.report.pool_breaks += 1
        self.degrade(
            "pool-broken",
            f"worker pool broke; requeued {len(self.pending)} unfinished "
            f"task(s), {len(self.report.completed)} completed result(s) kept",
        )

    @staticmethod
    def _shutdown(pool) -> None:
        processes = dict(getattr(pool, "_processes", None) or {})
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - teardown must not mask results
            pass
        for process in processes.values():
            # Reclaim workers that a timed-out task left stuck; idle
            # workers of a healthy pool are already exiting.
            try:
                process.terminate()
            except Exception:  # noqa: BLE001
                pass

    # -- completion -----------------------------------------------------

    def finish(self) -> tuple[list, RunReport]:
        self.report.tasks.sort(key=lambda task: task.index)
        failed = self.report.failed
        if failed and not self.policy.best_effort:
            names = ", ".join(task.label for task in failed)
            raise TaskExecutionError(
                f"{len(failed)} task(s) failed after retries: {names}",
                self.report,
            )
        return [None if r is _UNSET else r for r in self.results], self.report


def supervised_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    *,
    workers: int = 1,
    policy: SupervisorPolicy | None = None,
    labels: Sequence[str] | None = None,
    fault_plan: FaultPlan | None = None,
    use_pool: bool | None = None,
) -> tuple[list[_R | None], RunReport]:
    """``[fn(item) for item in items]`` under supervision.

    Returns ``(results, report)`` with results in input order.  Failed
    tasks raise :class:`TaskExecutionError` unless
    ``policy.best_effort``, in which case their slots hold ``None``.
    ``use_pool`` forces (True) or forbids (False) the process pool; by
    default the pool is used when ``workers > 1``.
    """
    items = list(items)
    policy = policy if policy is not None else SupervisorPolicy()
    if labels is None:
        label_list = [f"task-{i}" for i in range(len(items))]
    else:
        label_list = [str(label) for label in labels]
        if len(label_list) != len(items):
            raise ValueError(
                f"{len(label_list)} labels for {len(items)} items"
            )
    # Oversubscribing a small host loses outright (context switches on
    # a 1-core machine make the parallel suite *slower* than serial),
    # so the effective pool size is capped at the core count; the
    # report records what was actually used.  The pool-vs-serial choice
    # still follows the *requested* count, so asking for workers keeps
    # process isolation even on a single core.
    requested = max(1, workers)
    workers = min(requested, os.cpu_count() or 1, max(1, len(items)))
    state = _Supervision(fn, items, label_list, policy, fault_plan)
    pool_wanted = (requested > 1) if use_pool is None else use_pool
    if not pool_wanted or len(items) <= 1:
        state.report.effective_workers = 1
        state.dispatch(state.run_serial, range(len(items)))
        return state.finish()
    try:
        # Deliberately lazy: the serial path never initialises
        # multiprocessing state.
        import multiprocessing  # noqa: PLC0415

        context = multiprocessing.get_context("fork")
    except (ImportError, ValueError, OSError) as error:
        state.report.serial_fallback = True
        state.report.effective_workers = 1
        state.degrade(
            "pool-unavailable",
            f"cannot create fork worker pool ({type(error).__name__}: "
            f"{error}); running {len(items)} task(s) serially",
        )
        state.dispatch(state.run_serial, range(len(items)))
        return state.finish()
    state.report.effective_workers = workers
    state.dispatch(state.run_pool, context, workers)
    return state.finish()
