"""Deterministic fault injection for the simulation supervisor.

Recovery code that only runs when hardware misbehaves is recovery code
that never runs in CI.  A :class:`FaultPlan` makes every failure mode
the supervisor handles *injectable at a controlled point*:

* ``crash`` — the worker process dies abruptly (``os._exit``), which
  the parent observes as a ``BrokenProcessPool``;
* ``hang`` — the task sleeps past its wall-clock timeout;
* ``error`` — the task raises :class:`InjectedFault`.

Faults trigger purely as a function of ``(task index, attempt)``, so a
plan is reproducible across runs and picklable into child processes.
The module also ships the file-level helpers (:func:`corrupt_file`,
:func:`truncate_file`) used to exercise the profile-cache quarantine
and checkpoint error paths with deterministic, seeded damage.

The same plans double as the regression rig proving recovered runs stay
bit-identical to clean runs (see ``tests/test_resilience.py``).
"""

from __future__ import annotations

import dataclasses
import os
import random
import time

CRASH = "crash"
HANG = "hang"
ERROR = "error"
_KINDS = (CRASH, HANG, ERROR)

_CRASH_EXIT_CODE = 87
"""Arbitrary but recognisable status for injected worker deaths."""


class InjectedFault(RuntimeError):
    """Raised by an ``error`` fault (and by ``crash`` faults in-process,
    where killing the interpreter would take the supervisor down too)."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire on task ``index`` while ``attempt <= attempts``."""

    kind: str
    index: int
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use one of {_KINDS}")
        if self.index < 0:
            raise ValueError("fault index must be non-negative")
        if self.attempts < 1:
            raise ValueError("fault must trigger on at least one attempt")

    def triggers(self, index: int, attempt: int) -> bool:
        """True when this spec fires for 1-based ``attempt`` of task ``index``."""
        return index == self.index and attempt <= self.attempts


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    The plan is a pure function of ``(index, attempt)`` — no clocks, no
    randomness at decision time — so the same plan against the same task
    list reproduces the same failure sequence every run.
    """

    specs: tuple[FaultSpec, ...] = ()
    hang_seconds: float = 30.0
    seed: int = 0

    # -- construction helpers ------------------------------------------

    @classmethod
    def crash_at(cls, index: int, *, attempts: int = 1, **kwargs) -> "FaultPlan":
        return cls(specs=(FaultSpec(CRASH, index, attempts),), **kwargs)

    @classmethod
    def hang_at(cls, index: int, *, attempts: int = 1, **kwargs) -> "FaultPlan":
        return cls(specs=(FaultSpec(HANG, index, attempts),), **kwargs)

    @classmethod
    def error_at(cls, index: int, *, attempts: int = 1, **kwargs) -> "FaultPlan":
        return cls(specs=(FaultSpec(ERROR, index, attempts),), **kwargs)

    @classmethod
    def parse(cls, text: str, *, hang_seconds: float = 30.0) -> "FaultPlan":
        """Parse ``"crash@1,hang@2x3"`` → specs (``xN`` = first N attempts).

        This is the CLI surface (``repro ... --fault-plan``): it lets a
        recovery path be reproduced from a shell one-liner.
        """
        specs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                kind, _, where = part.partition("@")
                index_text, _, attempts_text = where.partition("x")
                specs.append(
                    FaultSpec(
                        kind=kind,
                        index=int(index_text),
                        attempts=int(attempts_text) if attempts_text else 1,
                    )
                )
            except ValueError as error:
                raise ValueError(
                    f"bad fault spec {part!r} (expected KIND@INDEX[xATTEMPTS]): "
                    f"{error}"
                ) from error
        return cls(specs=tuple(specs), hang_seconds=hang_seconds)

    # -- evaluation -----------------------------------------------------

    def action(self, index: int, attempt: int) -> str | None:
        """The fault kind to inject for this (task, attempt), or None."""
        for spec in self.specs:
            if spec.triggers(index, attempt):
                return spec.kind
        return None

    def apply(self, index: int, attempt: int, *, in_child: bool) -> None:
        """Inject the planned fault, if any, at a task's entry point.

        ``in_child`` distinguishes a pool worker (where a crash kills
        the process, surfacing as ``BrokenProcessPool`` in the parent)
        from in-process execution (where it raises instead — the
        supervisor must survive its own fault injection).
        """
        action = self.action(index, attempt)
        if action is None:
            return
        if action == HANG:
            time.sleep(self.hang_seconds)
        elif action == CRASH and in_child:
            os._exit(_CRASH_EXIT_CODE)
        else:
            raise InjectedFault(
                f"injected {action} fault at task {index} attempt {attempt}"
            )


# ---------------------------------------------------------------------------
# Server-side fault injection (repro serve)
# ---------------------------------------------------------------------------

SLOW_REQUEST = "slow-request"
POOL_KILL = "pool-kill"
QUEUE_FLOOD = "queue-flood"
_SERVE_KINDS = (SLOW_REQUEST, POOL_KILL, QUEUE_FLOOD)

_SERVE_ALIASES = {
    "slow": SLOW_REQUEST,
    "kill": POOL_KILL,
    "flood": QUEUE_FLOOD,
}


@dataclasses.dataclass(frozen=True)
class ServeFaultSpec:
    """One planned server-side fault: fire for ``span`` consecutive
    request ordinals starting at ``index``."""

    kind: str
    index: int
    span: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _SERVE_KINDS:
            raise ValueError(
                f"unknown serve fault kind {self.kind!r}; "
                f"use one of {_SERVE_KINDS}"
            )
        if self.index < 0:
            raise ValueError("serve fault index must be non-negative")
        if self.span < 1:
            raise ValueError("serve fault must cover at least one request")

    def triggers(self, index: int) -> bool:
        """True when this spec fires for request ordinal ``index``."""
        return self.index <= index < self.index + self.span


@dataclasses.dataclass(frozen=True)
class ServeFaultPlan:
    """A deterministic schedule of faults for the estimation server.

    Mirrors :class:`FaultPlan`, but keyed by the server's monotonically
    increasing *request ordinal* (assigned at admission of each POST)
    instead of (task, attempt), so a serving failure sequence is a pure
    function of request arrival order:

    * ``slow-request`` — the guarded execution sleeps
      ``slow_seconds`` (a slow structural point: exercises request
      deadlines and, because the sleep holds the engine's instance
      lock, admission-queue backpressure);
    * ``pool-kill`` — the detailed-tier execution dies (exercises the
      circuit breaker and the fidelity degradation ladder);
    * ``queue-flood`` — the admission gate reports itself full
      (exercises 429 + Retry-After handling in clients).
    """

    specs: tuple[ServeFaultSpec, ...] = ()
    slow_seconds: float = 2.0

    @classmethod
    def parse(cls, text: str, *, slow_seconds: float = 2.0) -> "ServeFaultPlan":
        """Parse ``"slow@2x3,kill@5"`` → specs (``xN`` = N consecutive
        requests; kinds accept the short aliases slow/kill/flood).

        This is the CLI surface (``repro serve --serve-fault-plan``).
        """
        specs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                kind, _, where = part.partition("@")
                index_text, _, span_text = where.partition("x")
                specs.append(
                    ServeFaultSpec(
                        kind=_SERVE_ALIASES.get(kind, kind),
                        index=int(index_text),
                        span=int(span_text) if span_text else 1,
                    )
                )
            except ValueError as error:
                raise ValueError(
                    f"bad serve fault spec {part!r} (expected "
                    f"KIND@INDEX[xSPAN]): {error}"
                ) from error
        return cls(specs=tuple(specs), slow_seconds=slow_seconds)

    def action(self, index: int) -> str | None:
        """The fault kind to inject for request ordinal ``index``, or
        None (negative ordinals — e.g. warm-up traffic — never fault)."""
        if index < 0:
            return None
        for spec in self.specs:
            if spec.triggers(index):
                return spec.kind
        return None


# ---------------------------------------------------------------------------
# File-damage helpers (cache quarantine / checkpoint recovery rigs)
# ---------------------------------------------------------------------------

def corrupt_file(path, *, seed: int = 0, nbytes: int = 24) -> None:
    """Overwrite the head of ``path`` with seeded garbage bytes.

    The damage is a pure function of ``seed``, so a corruption-recovery
    test fails reproducibly or not at all.
    """
    garbage = bytes(random.Random(seed).randrange(256) for _ in range(nbytes))
    with open(path, "r+b") as handle:
        handle.write(garbage)


def truncate_file(path, *, keep_bytes: int = 32) -> None:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (a torn write)."""
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
