"""Structured outcome reporting for supervised simulation runs.

A suite result is only meaningful if the user can tell *how* it was
produced: which tasks ran cleanly, which were retried, whether the
worker pool broke and had to be rebuilt, and whether the supervisor
degraded to serial execution.  :class:`RunReport` is that record — one
:class:`TaskRecord` per task plus a list of :class:`Degradation`
events — and it travels with the results:
:meth:`~repro.core.softwatt.SoftWatt.run_suite` and
:meth:`~repro.core.softwatt.SoftWatt.profile_many` return mappings that
carry the report of the run that produced them, and the CLI turns a
degraded report into a non-zero exit code under ``--strict``.
"""

from __future__ import annotations

import dataclasses

STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclasses.dataclass
class TaskRecord:
    """Final outcome of one supervised task."""

    index: int
    label: str
    status: str
    attempts: int
    duration_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclasses.dataclass(frozen=True)
class Degradation:
    """One event where the run deviated from the clean fast path."""

    kind: str
    """Stable machine-readable category: ``pool-broken``,
    ``pool-unavailable``, ``task-timeout``, ``serial-fallback``,
    ``task-failed``, ``cache-quarantine``."""

    detail: str
    """Human-readable description of what happened."""

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclasses.dataclass
class RunReport:
    """Everything the supervisor observed while executing one task set."""

    tasks: list[TaskRecord] = dataclasses.field(default_factory=list)
    degradations: list[Degradation] = dataclasses.field(default_factory=list)
    pool_breaks: int = 0
    pool_restarts: int = 0
    serial_fallback: bool = False
    effective_workers: int = 0
    """Worker count actually used after capping at ``os.cpu_count()``
    (0 until a supervised stage has run)."""
    notes: list[str] = dataclasses.field(default_factory=list)
    """Non-degrading annotations about how the run was produced (e.g.
    which fidelity tier simulated the structural points)."""

    # -- recording ------------------------------------------------------

    def record_task(self, record: TaskRecord) -> None:
        self.tasks.append(record)

    def add_degradation(self, kind: str, detail: str) -> Degradation:
        event = Degradation(kind=kind, detail=detail)
        self.degradations.append(event)
        return event

    def add_note(self, note: str) -> None:
        """Record a non-degrading annotation (never affects ``ok``)."""
        self.notes.append(note)

    def merge(self, other: "RunReport") -> None:
        """Fold another report into this one (e.g. per-call into session)."""
        self.tasks.extend(other.tasks)
        self.degradations.extend(other.degradations)
        self.pool_breaks += other.pool_breaks
        self.pool_restarts += other.pool_restarts
        self.serial_fallback = self.serial_fallback or other.serial_fallback
        self.effective_workers = max(
            self.effective_workers, other.effective_workers
        )
        self.notes.extend(other.notes)

    # -- queries --------------------------------------------------------

    @property
    def completed(self) -> list[TaskRecord]:
        return [task for task in self.tasks if task.ok]

    @property
    def failed(self) -> list[TaskRecord]:
        return [task for task in self.tasks if not task.ok]

    @property
    def retried(self) -> list[TaskRecord]:
        return [task for task in self.tasks if task.attempts > 1]

    @property
    def degraded(self) -> bool:
        """True when anything at all deviated from the clean fast path."""
        return bool(self.degradations) or bool(self.failed)

    @property
    def ok(self) -> bool:
        return not self.degraded

    # -- rendering ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable view (for exports and debugging)."""
        return {
            "tasks": [dataclasses.asdict(task) for task in self.tasks],
            "degradations": [dataclasses.asdict(d) for d in self.degradations],
            "pool_breaks": self.pool_breaks,
            "pool_restarts": self.pool_restarts,
            "serial_fallback": self.serial_fallback,
            "effective_workers": self.effective_workers,
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        """Multi-line human summary, suitable for the CLI."""
        lines = [
            f"run report: {len(self.completed)}/{len(self.tasks)} tasks ok, "
            f"{len(self.retried)} retried, {len(self.failed)} failed, "
            f"{len(self.degradations)} degradation(s)"
        ]
        for event in self.degradations:
            lines.append(f"  {event}")
        for task in self.failed:
            lines.append(
                f"  FAILED {task.label}: {task.error} "
                f"(after {task.attempts} attempt(s))"
            )
        return "\n".join(lines)


class ReportedMapping(dict):
    """A plain dict of results that also carries its :class:`RunReport`.

    Subclassing ``dict`` keeps every existing consumer working (lookups,
    iteration, ``set(results)``) while letting callers who care reach
    ``results.report``.
    """

    def __init__(self, data: dict, report: RunReport) -> None:
        super().__init__(data)
        self.report = report
