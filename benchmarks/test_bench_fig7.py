"""Figure 7: power budget with the IDLE-capable disk.

Paper: adding the IDLE low-power mode drops the disk from 34 % to 23 %
of average system power and shifts the power hotspot to the L1 I-cache
and the clock distribution network (~26 % each).
"""

from conftest import print_header

PAPER_FIG7_SHARES = {
    "disk": 23.0,
    "l1i": 26.0,
    "clock": 26.0,
    "datapath": 17.0,
    "l1d": 8.0,
    "l2d": 1.0,
    "l2i": 1.0,
    "memory": 1.0,
}


def _suite_average_shares(results):
    budgets = [result.power_budget() for result in results.values()]
    total = {key: sum(b[key] for b in budgets) / len(budgets) for key in budgets[0]}
    grand = sum(total.values())
    return {key: value / grand * 100.0 for key, value in total.items()}


def test_bench_fig7_idle_disk_budget(
    suite_conventional, suite_idle_disk, benchmark
):
    shares = benchmark(_suite_average_shares, suite_idle_disk)
    conventional = _suite_average_shares(suite_conventional)
    print_header("Figure 7: power budget with the IDLE-mode disk")
    print(f"  {'category':10s} {'paper %':>8s} {'measured %':>11s} "
          f"{'conventional %':>15s}")
    for name, paper in PAPER_FIG7_SHARES.items():
        label = f"<{paper:.0f}" if paper <= 1.0 else f"{paper:.0f}"
        print(f"  {name:10s} {label:>8s} {shares[name]:11.1f} "
              f"{conventional[name]:15.1f}")

    # The headline transition: the disk's dominance shrinks markedly.
    drop = conventional["disk"] - shares["disk"]
    print(f"  disk share drop: {conventional['disk']:.1f}% -> "
          f"{shares['disk']:.1f}%  (paper: 34% -> 23%)")
    assert drop > 7.0
    # The hotspot shifts: L1I + clock now out-consume the disk.
    assert shares["l1i"] + shares["clock"] > shares["disk"]
    # Every on-chip share grows relative to Figure 5.
    for name in ("l1i", "clock", "datapath"):
        assert shares[name] > conventional[name]
