"""Figure 4: profile of processor behaviour (jess, on MXS).

The paper shows the mode execution profile and the processor power
profile over the ~3.5 s MXS run: idle-dominated start, then sustained
user-mode execution at roughly constant power.
"""

from conftest import print_header

from repro.kernel import ExecutionMode

PROCESSOR_CATEGORIES = ("datapath", "l1d", "l2d", "l1i", "l2i", "clock")


def _processor_power(trace, index):
    return sum(trace.category_w[name][index] for name in PROCESSOR_CATEGORIES)


def test_bench_fig4_jess_processor_profile(sw, benchmark):
    result = sw.run("jess", disk=1)

    def postprocess():
        # The SoftWatt post-processing step: log -> power trace.
        from repro.core.timeline import disk_power_series
        from repro.stats.postprocess import compute_power_trace

        series = disk_power_series(result.timeline.disk, result.timeline.log)
        return compute_power_trace(result.timeline.log, sw.model,
                                   disk_power_w=series)

    trace = benchmark(postprocess)
    print_header("Figure 4: jess processor behaviour on MXS")
    log = result.timeline.log
    print(f"  {'t (s)':>6s} {'user%':>6s} {'kern%':>6s} {'idle%':>6s} "
          f"{'processor (W)':>14s}")
    step = max(1, len(log.records) // 16)
    for index in range(0, len(log.records), step):
        record = log.records[index]
        cycles = record.cycles or 1.0
        user = record.mode_cycles.get(ExecutionMode.USER, 0.0) / cycles * 100
        kern = record.mode_cycles.get(ExecutionMode.KERNEL, 0.0) / cycles * 100
        idle = record.mode_cycles.get(ExecutionMode.IDLE, 0.0) / cycles * 100
        print(f"  {trace.times_s[index]:6.2f} {user:6.1f} {kern:6.1f} "
              f"{idle:6.1f} {_processor_power(trace, index):14.2f}")

    # Paper's MXS run spans ~3.5 s.
    print(f"  profiled period: {log.duration_s:.1f} s (paper: ~3.5 s)")
    assert 3.0 <= log.duration_s <= 5.5

    # Idle-dominated opening, user-dominated remainder.
    first = log.records[0]
    assert first.dominant_mode() is ExecutionMode.IDLE
    second_half = log.records[len(log.records) // 2:]
    user_dominant = sum(
        1 for r in second_half if r.dominant_mode() is ExecutionMode.USER)
    assert user_dominant >= len(second_half) * 0.9

    # After the initial period, the power profile evens out: the
    # steady-tail coefficient of variation is small.
    tail = [
        _processor_power(trace, i)
        for i in range(len(log.records) // 2, len(log.records))
    ]
    mean = sum(tail) / len(tail)
    var = sum((x - mean) ** 2 for x in tail) / len(tail)
    assert (var ** 0.5) / mean < 0.35

    # Power while idling is *not* zero (busy-wait idle, Section 1).
    idle_power = _processor_power(trace, 0)
    assert idle_power > 0.5
