"""Table 2: percentage breakdown of energy and cycles per mode.

Per benchmark, the share of cycles and of energy spent in user mode,
kernel instructions, kernel synchronisation, and idle.  The paper's
patterns reproduced and asserted:

* user mode takes the bulk of both cycles and energy,
* the user mode's energy share EXCEEDS its cycle share (its higher ILP
  makes it the most power-dense mode),
* the kernel's energy share falls BELOW its cycle share (low-IPC,
  stall-heavy code), and likewise for idle,
* compress has the most user-dominated profile of the suite.
"""

from conftest import print_header

from repro.kernel import ExecutionMode
from repro.workloads import BENCHMARK_NAMES

PAPER_TABLE2 = {
    # benchmark: (user_cyc, kern_cyc, sync_cyc, idle_cyc,
    #             user_en, kern_en, sync_en, idle_en)
    "compress": (88.24, 7.95, 0.20, 3.61, 93.74, 4.18, 0.14, 1.94),
    "jess": (63.69, 24.57, 0.86, 10.88, 77.15, 15.12, 0.68, 7.05),
    "db": (66.10, 24.28, 0.75, 8.87, 81.19, 13.22, 0.54, 5.05),
    "javac": (64.20, 27.54, 0.55, 7.71, 78.47, 15.98, 0.44, 5.11),
    "mtrt": (80.62, 14.80, 0.26, 4.32, 90.07, 7.44, 0.17, 2.32),
    "jack": (69.02, 27.91, 0.63, 2.44, 81.36, 16.43, 0.51, 1.70),
}

MODES = (ExecutionMode.USER, ExecutionMode.KERNEL, ExecutionMode.SYNC,
         ExecutionMode.IDLE)


def _breakdowns(results):
    return {name: result.mode_breakdown() for name, result in results.items()}


def test_bench_table2(suite_conventional, benchmark):
    table = benchmark(_breakdowns, suite_conventional)
    print_header("Table 2: percentage breakdown of energy and cycles")
    print(f"  {'benchmark':10s} "
          f"{'user c/e':>14s} {'kernel c/e':>14s} {'sync c/e':>12s} "
          f"{'idle c/e':>12s}")
    for name in BENCHMARK_NAMES:
        rows = table[name]
        paper = PAPER_TABLE2[name]
        measured = " ".join(
            f"{rows[mode].cycles_pct:5.1f}/{rows[mode].energy_pct:5.1f}"
            for mode in MODES)
        print(f"  {name:10s}  {measured}")
        reference = " ".join(
            f"{paper[i]:5.1f}/{paper[i + 4]:5.1f}" for i in range(4))
        print(f"  {'  (paper)':10s}  {reference}")

    for name in BENCHMARK_NAMES:
        rows = table[name]
        user = rows[ExecutionMode.USER]
        kernel = rows[ExecutionMode.KERNEL]
        idle = rows[ExecutionMode.IDLE]
        # User dominates both columns.
        assert user.cycles_pct > 50.0, name
        assert user.energy_pct > 50.0, name
        # Energy-vs-cycle share patterns.
        assert user.energy_pct > user.cycles_pct, name
        assert kernel.energy_pct < kernel.cycles_pct, name
        assert idle.energy_pct <= idle.cycles_pct * 1.05, name
        # Shares add up.
        assert abs(sum(rows[m].cycles_pct for m in MODES) - 100.0) < 0.5
        assert abs(sum(rows[m].energy_pct for m in MODES) - 100.0) < 0.5

    # compress is the most user-dominated benchmark of the suite.
    compress_user = table["compress"][ExecutionMode.USER].cycles_pct
    for other in BENCHMARK_NAMES:
        if other != "compress":
            assert compress_user > table[other][ExecutionMode.USER].cycles_pct


def test_bench_table2_kernel_share_rises_with_issue_width(sw, benchmark):
    """Section 3.2: kernel activity rises from 14.28 % (single-issue) to
    21.02 % (4-wide superscalar) because kernel code has lower IPC and
    worse branch prediction — it scales worse with machine width."""
    from repro import SoftWatt, SystemConfig

    narrow_sw = SoftWatt(config=SystemConfig.table1().single_issue(),
                         window_instructions=15_000, seed=1)

    def kernel_share(instance, name="jess"):
        result = instance.run(name, disk=1)
        rows = result.mode_breakdown()
        return (rows[ExecutionMode.KERNEL].cycles_pct
                + rows[ExecutionMode.SYNC].cycles_pct)

    narrow = benchmark.pedantic(
        kernel_share, args=(narrow_sw,), rounds=1, iterations=1)
    wide = kernel_share(sw)
    print_header("Table 2 companion: kernel share vs issue width (jess)")
    print(f"  single-issue kernel share: {narrow:.1f}%  (paper avg: 14.3%)")
    print(f"  4-wide kernel share      : {wide:.1f}%  (paper avg: 21.0%)")
    assert wide > narrow
