"""Benches for the DVFS and thermal post-processing extensions.

Both close loops the paper opens: supply-voltage scaling is the first
circuit technique Section 1 lists, and Section 3.1 justifies designing
for *average* power by appeal to dynamic thermal management.
"""

from conftest import print_header

from repro.power import ThermalModel, sweep


def test_bench_dvfs_sweep(sw, suite_idle_disk, benchmark):
    """Voltage sweep on mtrt: CPU energy falls quadratically, but the
    wall-clock stretch keeps the disk powered longer — system energy
    has a minimum, and EDP has its own (higher-voltage) optimum."""
    result = suite_idle_disk["mtrt"]
    vdds = [3.3, 3.0, 2.7, 2.4, 2.1, 1.8, 1.5, 1.2]

    evaluations = benchmark(sweep, result, vdds)
    print_header("Extension: DVFS sweep (mtrt, IDLE-capable disk)")
    print(f"  {'Vdd V':>6s} {'f MHz':>6s} {'CPU J':>7s} {'disk J':>7s} "
          f"{'total J':>8s} {'dur s':>6s} {'EDP Js':>8s}")
    for ev in evaluations:
        print(f"  {ev.point.vdd:6.1f} {ev.point.clock_hz / 1e6:6.0f} "
              f"{ev.cpu_energy_j:7.1f} {ev.disk_energy_j:7.1f} "
              f"{ev.total_energy_j:8.1f} {ev.duration_s:6.1f} "
              f"{ev.energy_delay_product:8.0f}")

    base = evaluations[0]
    # CPU energy monotonically falls with voltage.
    cpu = [ev.cpu_energy_j for ev in evaluations]
    assert cpu == sorted(cpu, reverse=True)
    # Disk energy monotonically rises (the platter outlives the CPU win).
    disk = [ev.disk_energy_j for ev in evaluations]
    assert disk == sorted(disk)
    # System energy has an interior minimum: some mid voltage beats both
    # the top and the bottom of the sweep.
    totals = [ev.total_energy_j for ev in evaluations]
    best = min(range(len(totals)), key=totals.__getitem__)
    assert 0 < best < len(totals) - 1
    # EDP's optimum sits at a higher voltage than the energy optimum.
    edps = [ev.energy_delay_product for ev in evaluations]
    best_edp = min(range(len(edps)), key=edps.__getitem__)
    assert best_edp <= best


def test_bench_thermal_headroom(sw, suite_conventional, benchmark):
    """The average-power design argument (Section 3.1): every benchmark
    runs the package far below the DTM trip point, even though the
    machine's *peak* (validation) power would cook it."""
    model = ThermalModel()

    def profiles():
        return {
            name: model.profile(result.trace)
            for name, result in suite_conventional.items()
        }

    thermal = benchmark(profiles)
    print_header("Extension: package thermals under the suite")
    print(f"  sustainable power: {model.sustainable_power_w():.1f} W; "
          f"validation max power: {sw.validate_max_power():.1f} W")
    print(f"  {'benchmark':10s} {'peak C':>7s} {'margin C':>9s} {'DTM':>5s}")
    for name, profile in thermal.items():
        print(f"  {name:10s} {profile.peak_c:7.1f} "
              f"{profile.steady_state_margin_c:9.1f} "
              f"{'yes' if profile.dtm_engaged else 'no':>5s}")
        # Average-power design holds: no benchmark trips the throttle.
        assert not profile.dtm_engaged, name
    # But the validation maximum exceeds what the package can sustain:
    # designing for peak would demand a very different cooling solution.
    assert sw.validate_max_power() > model.sustainable_power_w()
