"""Figure 5: overall power budget with a conventional disk.

Paper: with no power-related disk optimisation, the disk is the single
largest consumer at 34 % of average system power; the L1 I-cache and
the clock network are the dominant on-chip categories (~22 % each),
with datapath ~15 %, L1D ~6 %, and L2/memory under 1 %.
"""

from conftest import print_header

PAPER_FIG5_SHARES = {
    "disk": 34.0,
    "l1i": 22.0,
    "clock": 22.0,
    "datapath": 15.0,
    "l1d": 6.0,
    "l2d": 1.0,
    "l2i": 1.0,
    "memory": 1.0,
}


def _suite_average_shares(results):
    budgets = [result.power_budget() for result in results.values()]
    total = {key: sum(b[key] for b in budgets) / len(budgets) for key in budgets[0]}
    grand = sum(total.values())
    return {key: value / grand * 100.0 for key, value in total.items()}, total


def test_bench_fig5_power_budget(suite_conventional, benchmark):
    shares, absolute = benchmark(_suite_average_shares, suite_conventional)
    print_header("Figure 5: overall power budget, conventional disk")
    print(f"  {'category':10s} {'paper %':>8s} {'measured %':>11s} {'W':>7s}")
    for name, paper in PAPER_FIG5_SHARES.items():
        label = f"<{paper:.0f}" if paper <= 1.0 else f"{paper:.0f}"
        print(f"  {name:10s} {label:>8s} {shares[name]:11.1f} {absolute[name]:7.2f}")

    # The headline claim: the disk is the single largest consumer.
    assert shares["disk"] == max(shares.values())
    assert shares["disk"] > 30.0
    # The bulk of the remaining power is processor datapath + memory
    # system components (Section 3.2).
    on_chip = 100.0 - shares["disk"]
    assert on_chip > 45.0
    # L1I and the clock are the dominant on-chip categories.
    on_chip_shares = {k: v for k, v in shares.items() if k != "disk"}
    top_two = sorted(on_chip_shares, key=on_chip_shares.get, reverse=True)[:2]
    assert set(top_two) <= {"l1i", "clock", "datapath"}
    assert "clock" in top_two
    # L2 and main memory stay marginal (<2 % each).
    assert shares["l2d"] < 2.0
    assert shares["l2i"] < 2.0
    assert shares["memory"] < 2.0
