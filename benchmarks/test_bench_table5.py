"""Table 5: variation in per-invocation energy of kernel services.

Paper: services internal to the kernel (utlb, demand_zero, cacheflush)
show very small per-invocation energy deviation — utlb's coefficient of
deviation is just 0.14 % — while externally-invoked I/O services (read,
write, open) vary with their data (6.6-10.7 %).  "Given a trace of the
number of invocations ... it is possible to get a rough estimate, with
an error margin of about 10%, of the kernel energy consumption, without
actually performing a detailed simulation."
"""

from conftest import print_header

TABLE5_SERVICES = ("utlb", "demand_zero", "cacheflush", "read", "write", "open")

PAPER_TABLE5 = {
    # service: (mean energy per invocation J, coefficient of deviation %)
    "utlb": (2.1276e-07, 0.13971),
    "demand_zero": (5.408e-05, 1.4927),
    "cacheflush": (2.1606e-05, 2.4698),
    "read": (4.8894e-05, 6.615),
    "write": (2.5351e-04, 10.6632),
    "open": (1.5586e-04, 10.0714),
}

INTERNAL = ("utlb", "demand_zero", "cacheflush")
EXTERNAL = ("read", "write", "open")


def test_bench_table5(service_profiles, benchmark):
    def summarize():
        return {
            name: (service_profiles[name].mean_energy_j,
                   service_profiles[name].coefficient_of_deviation)
            for name in TABLE5_SERVICES
        }

    table = benchmark(summarize)
    print_header("Table 5: per-invocation energy variation")
    print(f"  {'service':12s} {'mean J':>12s} {'CoD %':>8s} "
          f"{'paper mean J':>13s} {'paper CoD %':>12s}")
    for name in TABLE5_SERVICES:
        mean, cod = table[name]
        paper_mean, paper_cod = PAPER_TABLE5[name]
        print(f"  {name:12s} {mean:12.4g} {cod:8.2f} "
              f"{paper_mean:13.4g} {paper_cod:12.2f}")

    # utlb has the smallest per-invocation energy by orders of magnitude.
    assert table["utlb"][0] == min(mean for mean, _ in table.values())
    for name in ("demand_zero", "cacheflush", "read"):
        assert table[name][0] > 10 * table["utlb"][0], name

    # Every internal service deviates less than every external one.
    worst_internal = max(table[name][1] for name in INTERNAL)
    best_external = min(table[name][1] for name in EXTERNAL)
    print(f"  worst internal CoD {worst_internal:.2f}% < "
          f"best external CoD {best_external:.2f}%")
    assert worst_internal < best_external

    # utlb is the steadiest service of all (paper: 0.14 %).
    assert table["utlb"][1] == min(cod for _, cod in table.values())
    assert table["utlb"][1] < 3.0

    # The paper's acceleration argument: external services stay within
    # a ~10-15 % deviation band, so trace-based estimation works.
    for name in EXTERNAL:
        assert table[name][1] < 25.0, name
