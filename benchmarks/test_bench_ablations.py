"""Ablations of the design choices DESIGN.md §5 calls out.

Not paper experiments — sensitivity studies of the reproduction itself:

* conditional clocking vs an always-on clock,
* the software-managed TLB (utlb service) vs hardware refill,
* a spin-down-threshold sweep beyond the paper's {2 s, 4 s},
* the disk's share as a function of CPU issue width.
"""

import pytest
from conftest import WINDOW, print_header

from repro import SoftWatt, SystemConfig
from repro.config import DiskPowerPolicy
from repro.kernel import ExecutionMode
from repro.power import ProcessorPowerModel
from repro.stats.counters import AccessCounters


def test_bench_ablation_conditional_clocking(sw, benchmark):
    """How much does SoftWatt's conditional clocking model matter?"""
    result = sw.run("jess", disk=1)
    counters = result.timeline.log.total_counters()
    cycles = int(result.timeline.log.total_cycles())
    model = sw.model

    def both():
        gated = model.energy_by_category(counters, cycles)["clock"]
        # Always-on clock: every latch toggles every cycle.
        ungated = cycles * model.clock.energy_per_cycle_j(gating_factor=1.0)
        return gated, ungated

    gated, ungated = benchmark(both)
    print_header("Ablation: conditional clocking (jess)")
    print(f"  gated clock energy  : {gated:8.2f} J")
    print(f"  always-on clock     : {ungated:8.2f} J")
    print(f"  saving              : {(1 - gated / ungated) * 100:5.1f}%")
    assert gated < ungated
    assert (1 - gated / ungated) > 0.10


def test_bench_ablation_hardware_tlb(benchmark):
    """Removing the software-managed TLB removes the dominant kernel
    service: the kernel's cycle share collapses."""
    soft = SoftWatt(window_instructions=WINDOW, seed=1)
    hard = SoftWatt(config=SystemConfig.table1().with_hardware_tlb(),
                    window_instructions=WINDOW, seed=1)

    def run_pair():
        return soft.run("db", disk=1), hard.run("db", disk=1)

    soft_result, hard_result = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    soft_kernel = soft_result.mode_breakdown()[ExecutionMode.KERNEL].cycles_pct
    hard_kernel = hard_result.mode_breakdown()[ExecutionMode.KERNEL].cycles_pct
    print_header("Ablation: software vs hardware TLB refill (db)")
    print(f"  software-managed kernel share: {soft_kernel:5.1f}%")
    print(f"  hardware-refill kernel share : {hard_kernel:5.1f}%")
    assert hard_kernel < soft_kernel * 0.6
    # utlb vanishes from the service table under hardware refill.
    hard_services = {row.service for row in hard_result.service_breakdown()
                     if row.cycles > 1.0}
    soft_rows = soft_result.service_breakdown()
    assert soft_rows[0].service == "utlb"
    assert "utlb" not in hard_services or (
        hard_result.timeline.label_cycles.get("utlb", 0.0)
        < 0.05 * soft_result.timeline.label_cycles["utlb"])


@pytest.mark.parametrize("threshold_s", [1.0, 2.0, 3.0, 4.0, 6.0, 8.0])
def test_bench_ablation_spindown_sweep(sw, benchmark, threshold_s):
    """Sweep the spin-down threshold on compress: thresholds below its
    ~2.4 s inter-access gaps are pathological; above, harmless."""
    policy = DiskPowerPolicy(name=f"sweep-{threshold_s}",
                             spindown_threshold_s=threshold_s)

    def run():
        return sw.run("compress", disk=policy)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = sw.run("compress", disk=2)
    print(f"  threshold {threshold_s:4.1f} s: disk {result.disk_energy_j:7.1f} J, "
          f"spindowns {result.timeline.disk.state.spindowns}, "
          f"duration {result.timeline.duration_s:6.2f} s")
    if threshold_s < 2.4:
        # Below the benchmark's steady gap: spin-down pathology.
        assert result.timeline.disk.state.spindowns >= 2
        assert result.disk_energy_j > reference.disk_energy_j
    if threshold_s > 4.0:
        # Comfortably above every gap: behaves like configuration 2.
        assert result.timeline.disk.state.spindowns == 0
        assert result.disk_energy_j == pytest.approx(
            reference.disk_energy_j, rel=0.02)


def test_bench_ablation_issue_width_power(benchmark):
    """CPU power scales with issue width; the (fixed-power) conventional
    disk therefore dominates the narrow machine even more."""
    wide = SoftWatt(window_instructions=WINDOW, seed=1)
    narrow = SoftWatt(config=SystemConfig.table1().single_issue(),
                      window_instructions=WINDOW // 2, seed=1)

    def budgets():
        return (wide.run("compress", disk=1).power_budget_shares(),
                narrow.run("compress", disk=1).power_budget_shares())

    wide_shares, narrow_shares = benchmark.pedantic(budgets, rounds=1, iterations=1)
    print_header("Ablation: disk share vs issue width (compress)")
    print(f"  4-wide disk share      : {wide_shares['disk']:5.1f}%")
    print(f"  single-issue disk share: {narrow_shares['disk']:5.1f}%")
    assert narrow_shares["disk"] > wide_shares["disk"]


def test_bench_ablation_clock_gating_sensitivity(sw, benchmark):
    """The clock share responds to activity: a mostly-idle counter set
    gates far more of the tree than a saturated one."""
    model = ProcessorPowerModel(SystemConfig.table1())
    cycles = 1_000_000

    def clock_powers():
        quiet = AccessCounters(l1i_access=cycles // 10,
                               window_dispatch=cycles // 10)
        busy = model.max_power_counters(cycles)
        quiet_w = model.average_power_w(quiet, cycles)["clock"]
        busy_w = model.average_power_w(busy, cycles)["clock"]
        return quiet_w, busy_w

    quiet_w, busy_w = benchmark(clock_powers)
    print_header("Ablation: clock power vs activity")
    print(f"  quiet machine clock: {quiet_w:5.2f} W")
    print(f"  saturated clock    : {busy_w:5.2f} W")
    assert quiet_w < busy_w * 0.7
    assert quiet_w > 0.5  # the spine never gates off
