"""Figure 3: profile of memory-subsystem behaviour (jess).

Three panels in the paper: the execution-time mode profile and the
memory-subsystem power profile over time on Mipsy, plus the profile on
a single-issue MXS configuration.  Key claims reproduced:

* the run opens idle-dominated (class loading from disk), then user
  mode takes over,
* memory-subsystem power ramps steeply at the start (cold-start
  misses) and then evens out,
* "the average power of the memory subsystem is more than twice that
  of the processor datapath" on the single-issue machine.
"""

from conftest import print_header

from repro import SoftWatt
from repro.kernel import ExecutionMode

MEMORY_CATEGORIES = ("l1d", "l2d", "l1i", "l2i", "memory")


def _memory_power(trace, index):
    return sum(trace.category_w[name][index] for name in MEMORY_CATEGORIES)


def _print_profile(result):
    trace = result.trace
    print(f"  {'t (s)':>6s} {'user%':>6s} {'kern%':>6s} {'idle%':>6s} "
          f"{'mem-subsys (W)':>15s}")
    step = max(1, len(result.timeline.log.records) // 16)
    for index in range(0, len(result.timeline.log.records), step):
        record = result.timeline.log.records[index]
        cycles = record.cycles or 1.0
        user = record.mode_cycles.get(ExecutionMode.USER, 0.0) / cycles * 100
        kern = record.mode_cycles.get(ExecutionMode.KERNEL, 0.0) / cycles * 100
        idle = record.mode_cycles.get(ExecutionMode.IDLE, 0.0) / cycles * 100
        print(f"  {trace.times_s[index]:6.2f} {user:6.1f} {kern:6.1f} "
              f"{idle:6.1f} {_memory_power(trace, index):15.2f}")


def test_bench_fig3_jess_on_mipsy(sw_mipsy, benchmark):
    result = sw_mipsy.run("jess", disk=1)

    def replay():
        return sw_mipsy.run("jess", disk=1)

    benchmark.pedantic(replay, rounds=1, iterations=1)
    print_header("Figure 3 (left/middle): jess memory subsystem on Mipsy")
    _print_profile(result)
    log = result.timeline.log
    # The paper's Mipsy profile spans ~8 s (vs ~3.5 s on MXS).
    print(f"  profiled period: {log.duration_s:.1f} s (paper: ~8 s)")
    assert 6.0 <= log.duration_s <= 11.0
    # Initial idle dominance: more idle cycles in the first tenth of the
    # run than in the last half.
    records = log.records
    tenth = max(1, len(records) // 10)
    early_idle = sum(r.mode_cycles.get(ExecutionMode.IDLE, 0.0)
                     for r in records[:tenth])
    late_idle = sum(r.mode_cycles.get(ExecutionMode.IDLE, 0.0)
                    for r in records[len(records) // 2:])
    assert early_idle > late_idle
    # The memory-power ramp: the early interval beats the steady tail.
    trace = result.trace
    early_power = max(_memory_power(trace, i) for i in range(tenth * 2))
    tail_start = len(records) * 3 // 4
    tail_power = sum(
        _memory_power(trace, i) for i in range(tail_start, len(records))
    ) / (len(records) - tail_start)
    assert early_power > tail_power


def test_bench_fig3_single_issue_memory_vs_datapath(sw_mipsy, benchmark):
    """On the single-issue machine (Mipsy supplies the paper's
    memory-subsystem statistics) the memory subsystem's average power is
    more than twice the processor datapath's."""
    result = sw_mipsy.run("jess", disk=1)

    def budget():
        return result.power_budget()

    powers = benchmark(budget)
    memory_subsystem = sum(powers[name] for name in MEMORY_CATEGORIES)
    datapath = powers["datapath"]
    print_header("Figure 3 (right): single-issue memory subsystem vs datapath")
    print(f"  memory subsystem: {memory_subsystem:.2f} W")
    print(f"  processor datapath: {datapath:.2f} W")
    print(f"  ratio: {memory_subsystem / datapath:.2f}x (paper: > 2x)")
    assert memory_subsystem > 2.0 * datapath

    # The 1-wide MXS configuration shows the same direction.
    narrow = SoftWatt(
        config=__import__("repro").SystemConfig.table1().single_issue(),
        window_instructions=12_000,
        seed=1,
    )
    narrow_powers = narrow.run("jess", disk=1).power_budget()
    narrow_memory = sum(narrow_powers[name] for name in MEMORY_CATEGORIES)
    assert narrow_memory > 1.2 * narrow_powers["datapath"]
