"""Section 2 validation: R10000 maximum power.

Paper: "In comparison to the maximum power dissipation of 30 W reported
in the R10000 data sheet, SoftWatt reports 25.3 W."
"""

from conftest import print_header

from repro import r10000_max_power
from repro.config import SystemConfig
from repro.power import ProcessorPowerModel

R10000_DATASHEET_W = 30.0
PAPER_SOFTWATT_W = 25.3


def test_bench_r10000_max_power(benchmark):
    power = benchmark(r10000_max_power)
    print_header("Validation: R10000 maximum CPU power (Section 2)")
    print(f"  datasheet maximum : {R10000_DATASHEET_W:.1f} W")
    print(f"  paper SoftWatt    : {PAPER_SOFTWATT_W:.1f} W")
    print(f"  this reproduction : {power:.1f} W")
    assert abs(power - PAPER_SOFTWATT_W) < 0.5
    assert power < R10000_DATASHEET_W


def test_bench_max_power_breakdown(benchmark):
    model = ProcessorPowerModel(SystemConfig.table1())

    def breakdown():
        counters = model.max_power_counters(100_000)
        return model.average_power_w(counters, 100_000)

    powers = benchmark(breakdown)
    print_header("Validation: maximum-power category breakdown")
    total = sum(v for k, v in powers.items() if k != "memory")
    for name, value in powers.items():
        print(f"  {name:10s} {value:6.2f} W ({value / total * 100:5.1f}% of max)")
    # At maximum duty the datapath (every ALU and both FP pipes busy
    # every cycle) dominates; the clock and L1I follow.
    assert powers["datapath"] == max(powers.values())
    assert powers["clock"] > 0.08 * total
    assert powers["l1i"] > 0.08 * total
