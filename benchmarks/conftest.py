"""Shared fixtures for the experiment-reproduction benchmarks.

Each ``test_bench_*`` file regenerates one table or figure of the paper:
it runs the simulation, prints the paper-shaped rows/series, asserts
the qualitative shape (who wins, orderings, crossovers), and times a
representative slice of the computation with pytest-benchmark.

Detailed-window size is controlled by ``REPRO_BENCH_WINDOW``
(instructions per benchmark window; default 40000 — larger windows give
steadier numbers at higher cost).  Note the window is part of the
persistent profile-cache key, so changing it re-profiles rather than
reusing cached entries.

Every benchmark session shares one persistent profile-cache directory:
``REPRO_CACHE_DIR`` if the caller exported it (profiles then survive
across sessions), otherwise a per-session temporary directory (profiles
shared across the bench files of this run only).
"""

from __future__ import annotations

import os

import pytest

from repro import SoftWatt
from repro.workloads import BENCHMARK_NAMES

WINDOW = int(os.environ.get("REPRO_BENCH_WINDOW", "40000"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def profile_cache_dir(tmp_path_factory) -> str:
    """One profile-cache directory for the whole benchmark session."""
    directory = os.environ.get("REPRO_CACHE_DIR")
    if not directory:
        directory = str(tmp_path_factory.mktemp("profile-cache"))
    # Export it so SoftWatt instances constructed inside individual
    # benches (sweeps, ablations) share the same cache.
    os.environ["REPRO_CACHE_DIR"] = directory
    return directory


@pytest.fixture(scope="session")
def sw(profile_cache_dir) -> SoftWatt:
    """The shared MXS SoftWatt instance (profiles cached across benches)."""
    return SoftWatt(window_instructions=WINDOW, seed=SEED,
                    cache_dir=profile_cache_dir)


@pytest.fixture(scope="session")
def sw_mipsy(profile_cache_dir) -> SoftWatt:
    """A Mipsy-model instance (memory-subsystem statistics, Figure 3)."""
    return SoftWatt(cpu_model="mipsy", window_instructions=WINDOW // 2, seed=SEED,
                    cache_dir=profile_cache_dir)


@pytest.fixture(scope="session")
def suite_conventional(sw):
    """All six benchmarks under the conventional disk (Section 3)."""
    return {name: sw.run(name, disk=1) for name in BENCHMARK_NAMES}


@pytest.fixture(scope="session")
def suite_idle_disk(sw):
    """All six benchmarks with the IDLE-capable disk (Figure 7)."""
    return {name: sw.run(name, disk=2) for name in BENCHMARK_NAMES}


@pytest.fixture(scope="session")
def service_profiles(sw):
    """Per-invocation kernel-service profiles (Table 5 / Figure 8)."""
    return sw.service_profiles(invocations=60)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
