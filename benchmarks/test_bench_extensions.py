"""Benches for the Section 5 extensions (the paper's future work).

* halting the CPU during idle instead of busy-waiting ("This energy
  consumption can be reduced by transitioning the CPU and the
  memory-subsystem to a low-power mode or by even halting the
  processor, instead of executing the idle-process"),
* an adaptive spin-down threshold (the paper's Section 4 design rule,
  made self-tuning in the spirit of the adaptive policies it cites).
"""

from conftest import print_header

from repro.disk import AdaptiveSpinDownDisk, PowerManagedDisk
from repro.config import disk_configuration
from repro.kernel import ExecutionMode
from repro.workloads import BENCHMARK_NAMES, benchmark


def test_bench_halt_on_idle(sw, suite_conventional, benchmark):
    """Quantify the paper's halt-the-idle-process suggestion."""

    def sweep():
        savings = {}
        for name in BENCHMARK_NAMES:
            busy = suite_conventional[name]
            halted = sw.run(name, disk=1, idle_policy="halt")
            savings[name] = (busy.total_energy_j, halted.total_energy_j)
        return savings

    savings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("Extension: halting the CPU during idle (Section 5)")
    print(f"  {'benchmark':10s} {'busy-wait J':>12s} {'halted J':>10s} "
          f"{'saving %':>9s} {'idle cyc %':>11s}")
    for name in BENCHMARK_NAMES:
        busy_j, halt_j = savings[name]
        idle_pct = suite_conventional[name].mode_breakdown()[
            ExecutionMode.IDLE].cycles_pct
        saving = (1.0 - halt_j / busy_j) * 100.0
        print(f"  {name:10s} {busy_j:12.1f} {halt_j:10.1f} {saving:9.1f} "
              f"{idle_pct:11.1f}")
        assert halt_j < busy_j, name

    # The paper's >5%-of-system-energy claim applies to the idle-heavy
    # benchmarks (jess/db, ~10-13% idle); ours land in that band.
    jess_saving = 1.0 - savings["jess"][1] / savings["jess"][0]
    db_saving = 1.0 - savings["db"][1] / savings["db"][0]
    assert jess_saving > 0.03
    assert db_saving > 0.03
    # Savings scale with idle share: jess/db save more than mtrt.
    mtrt_saving = 1.0 - savings["mtrt"][1] / savings["mtrt"][0]
    assert min(jess_saving, db_saving) > mtrt_saving


def test_bench_adaptive_spindown(benchmark):
    """The adaptive threshold dodges the fixed-2s pathology on a
    compress-shaped access pattern and keeps spinning down when gaps
    are genuinely long."""
    spec = benchmark_spec = __import__(
        "repro.workloads", fromlist=["benchmark"]).benchmark("compress")
    steady = [e for e in spec.disk_events if e.progress_s > 1.0]
    gap = steady[1].progress_s - steady[0].progress_s

    def drive(disk, gap_s, requests):
        t = 0.0
        for _ in range(requests):
            result = disk.request(t, 64 * 1024)
            t = result.completion_s + gap_s
        disk.finish(t)
        return disk

    def run_pair():
        adaptive = drive(AdaptiveSpinDownDisk(2.0, seed=3), gap, 10)
        fixed = drive(PowerManagedDisk(disk_configuration(3), seed=3), gap, 10)
        return adaptive, fixed

    adaptive, fixed = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print_header("Extension: adaptive spin-down threshold")
    print(f"  compress-shaped gaps of {gap:.1f} s, 10 requests:")
    print(f"    fixed 2 s   : {fixed.energy.energy_j:6.1f} J, "
          f"{fixed.state.spindowns} spindowns")
    print(f"    adaptive    : {adaptive.energy.energy_j:6.1f} J, "
          f"{adaptive.state.spindowns} spindowns, "
          f"threshold ended at {adaptive.threshold_s:.1f} s")
    assert adaptive.energy.energy_j < 0.6 * fixed.energy.energy_j
    assert adaptive.state.spindowns <= 2

    # Long gaps (laptop-style think time): adaptive keeps the savings.
    long_gap = 60.0
    lazy = drive(AdaptiveSpinDownDisk(2.0, seed=3), long_gap, 6)
    never = drive(PowerManagedDisk(disk_configuration(2), seed=3), long_gap, 6)
    print(f"  {long_gap:.0f} s gaps, 6 requests:")
    print(f"    idle-only   : {never.energy.energy_j:6.1f} J")
    print(f"    adaptive    : {lazy.energy.energy_j:6.1f} J, "
          f"{lazy.state.spindowns} spindowns")
    assert lazy.state.spindowns >= 5
    assert lazy.energy.energy_j < never.energy.energy_j
