"""Figure 2: the MK3003MAN operating-modes state machine.

Regenerates the mode/power table and exercises every legal transition
path of the state machine, including the energy cost of a full
IDLE -> STANDBY -> ACTIVE excursion.
"""

import pytest
from conftest import print_header

from repro.config import (
    MK3003MAN_POWER_W,
    SPINDOWN_TIME_S,
    SPINUP_TIME_S,
    DiskMode,
    disk_configuration,
)
from repro.disk import DiskEnergyAccountant, DiskStateMachine, PowerManagedDisk

PAPER_FIGURE2_W = {
    "Sleep": 0.15,
    "Idle": 1.6,
    "Standby": 0.35,
    "Active": 3.2,
    "Seeking": 4.1,
    "Spin up": 4.2,
}

_MODE_OF_ROW = {
    "Sleep": DiskMode.SLEEP,
    "Idle": DiskMode.IDLE,
    "Standby": DiskMode.STANDBY,
    "Active": DiskMode.ACTIVE,
    "Seeking": DiskMode.SEEK,
    "Spin up": DiskMode.SPINUP,
}


def test_bench_figure2_power_table(benchmark):
    def build_table():
        return {row: MK3003MAN_POWER_W[mode] for row, mode in _MODE_OF_ROW.items()}

    table = benchmark(build_table)
    print_header("Figure 2: MK3003MAN operating modes")
    print(f"  {'Mode':10s} {'paper (W)':>10s} {'measured (W)':>13s}")
    for row, paper_w in PAPER_FIGURE2_W.items():
        print(f"  {row:10s} {paper_w:10.2f} {table[row]:13.2f}")
    print(f"  spin up / spin down time: {SPINUP_TIME_S:.0f} s / {SPINDOWN_TIME_S:.0f} s")
    for row, paper_w in PAPER_FIGURE2_W.items():
        assert table[row] == pytest.approx(paper_w)


def test_bench_state_machine_excursion(benchmark):
    """One full low-power excursion, energy-integrated event-exactly."""

    def excursion():
        machine = DiskStateMachine(DiskMode.IDLE)
        accountant = DiskEnergyAccountant()
        accountant.accrue(DiskMode.IDLE, 2.0)
        machine.transition(DiskMode.SPINDOWN)
        accountant.accrue(DiskMode.SPINDOWN, SPINDOWN_TIME_S)
        machine.transition(DiskMode.STANDBY)
        accountant.accrue(DiskMode.STANDBY, 10.0)
        machine.transition(DiskMode.SPINUP)
        accountant.accrue(DiskMode.SPINUP, SPINUP_TIME_S)
        machine.transition(DiskMode.ACTIVE)
        accountant.accrue(DiskMode.ACTIVE, 0.05)
        return accountant

    accountant = benchmark(excursion)
    print_header("Figure 2: one spin-down/spin-up excursion")
    for mode in (DiskMode.IDLE, DiskMode.SPINDOWN, DiskMode.STANDBY,
                 DiskMode.SPINUP, DiskMode.ACTIVE):
        print(f"  {mode.value:9s} {accountant.time_in_mode_s[mode]:6.2f} s "
              f"{accountant.energy_in_mode_j[mode]:7.2f} J")
    # The spin-up dominates the excursion's energy (5 s at 4.2 W).
    assert accountant.energy_in_mode_j[DiskMode.SPINUP] == pytest.approx(21.0)
    assert accountant.energy_in_mode_j[DiskMode.SPINUP] > (
        accountant.energy_in_mode_j[DiskMode.STANDBY])


def test_bench_request_service_path(benchmark):
    """The IDLE -> SEEK -> ACTIVE -> IDLE request path of Figure 2."""

    def serve():
        disk = PowerManagedDisk(disk_configuration(2), seed=3)
        disk.request(0.5, 64 * 1024)
        return disk

    disk = benchmark(serve)
    assert disk.state.count(DiskMode.IDLE, DiskMode.SEEK) == 1
    assert disk.state.count(DiskMode.SEEK, DiskMode.ACTIVE) == 1
    assert disk.state.count(DiskMode.ACTIVE, DiskMode.IDLE) == 1
    assert disk.mode is DiskMode.IDLE
