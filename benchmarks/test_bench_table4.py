"""Table 4: breakdown of kernel computation by service — cycles vs energy.

Per benchmark: invocation counts, percentage of kernel cycles, and
percentage of kernel energy per service.  The paper's key findings:

* the services that account for the bulk of kernel execution time also
  account for the bulk of kernel energy,
* utlb dominates kernel cycles everywhere (64-81 %) — it is by far the
  most frequently invoked service,
* but utlb's energy share is proportionately SMALLER than its cycle
  share (its low average power: not data-intensive),
* read is the largest externally-invoked contributor.
"""

from conftest import print_header

from repro.workloads import BENCHMARK_NAMES
from repro.workloads.specjvm98 import PAPER_TABLE4_INVOCATIONS

PAPER_UTLB_SHARE = {
    "compress": (76.29, 64.30),
    "jess": (64.82, 53.71),
    "db": (75.66, 66.64),
    "javac": (78.78, 71.67),
    "mtrt": (81.31, 72.20),
    "jack": (71.01, 64.05),
}


def _tables(results):
    return {name: result.service_breakdown() for name, result in results.items()}


def test_bench_table4(suite_conventional, benchmark):
    tables = benchmark(_tables, suite_conventional)
    print_header("Table 4: kernel computation by service")
    for name in BENCHMARK_NAMES:
        rows = tables[name]
        print(f"\n  {name}:")
        print(f"    {'service':12s} {'num':>12s} {'%cycles':>8s} {'%energy':>8s}"
              f" {'paper%cyc':>10s}")
        paper_counts = PAPER_TABLE4_INVOCATIONS[name]
        for row in rows[:8]:
            paper_cyc = {
                "compress": {"utlb": 76.29, "read": 9.46, "demand_zero": 4.46},
                "jess": {"utlb": 64.82, "read": 16.51, "BSD": 4.15},
                "db": {"utlb": 75.66, "read": 7.04, "write": 5.12},
                "javac": {"utlb": 78.78, "read": 5.47, "demand_zero": 3.71},
                "mtrt": {"utlb": 81.31, "read": 6.36, "demand_zero": 3.24},
                "jack": {"utlb": 71.01, "read": 16.75, "BSD": 6.61},
            }[name].get(row.service)
            ref = f"{paper_cyc:10.2f}" if paper_cyc is not None else f"{'-':>10s}"
            print(f"    {row.service:12s} {row.invocations:12.0f} "
                  f"{row.kernel_cycles_pct:8.2f} {row.kernel_energy_pct:8.2f}{ref}")
        assert paper_counts  # every benchmark has reference counts

    for name in BENCHMARK_NAMES:
        rows = tables[name]
        by_service = {row.service: row for row in rows}
        utlb = by_service["utlb"]
        # utlb dominates kernel cycles.
        assert rows[0].service == "utlb", name
        assert utlb.kernel_cycles_pct > 40.0, name
        # utlb's energy share is proportionately smaller.
        assert utlb.kernel_energy_pct < utlb.kernel_cycles_pct, name
        # utlb is by far the most frequently invoked service.
        others = [row.invocations for row in rows if row.service != "utlb"]
        assert utlb.invocations > 10 * max(others), name
        # read is the top externally-invoked service by cycles.
        external = [row for row in rows
                    if row.service in ("read", "write", "open", "BSD", "xstat")]
        assert external and external[0].service == "read", name
        # Cycle-dominant services are also energy-dominant: the top-3
        # by cycles contain the top-2 by energy.
        top_cycles = {row.service for row in rows[:3]}
        top_energy = sorted(rows, key=lambda r: -r.kernel_energy_pct)[:2]
        assert all(row.service in top_cycles for row in top_energy), name

    # The per-benchmark service mixes follow the paper: BSD appears
    # only for jess and jack, du_poll only for db, xstat only for javac.
    assert any(r.service == "BSD" for r in tables["jess"])
    assert any(r.service == "BSD" for r in tables["jack"])
    assert not any(r.service == "BSD" for r in tables["compress"])
    assert any(r.service == "du_poll" for r in tables["db"])
    assert any(r.service == "xstat" for r in tables["javac"])
