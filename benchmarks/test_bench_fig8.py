"""Figure 8: average power of operating-system services.

Paper: utlb has a much lower average power than read, demand_zero, and
cacheflush — "the handler is not data-intensive, and therefore does not
exercise the data caches and the load/store queue.  As these units are
not accessed, the clock power is lower as well."

The powers here are computed the way the paper computes them: averaged
over all invocations of the service across the entire profiled period
of every benchmark (so utlb includes its trap-entry overhead), then
averaged over the suite.
"""

from conftest import print_header

from repro.power import REGISTRY

CATEGORIES = REGISTRY.counter_categories

FIGURE8_SERVICES = ("utlb", "read", "demand_zero", "cacheflush")


def _service_power(results, model):
    """Suite-average power per service, split by category."""
    cycle_time = model.technology.cycle_time_s
    energy: dict[str, dict[str, float]] = {}
    cycles: dict[str, float] = {}
    for result in results.values():
        timeline = result.timeline
        for service in FIGURE8_SERVICES:
            service_cycles = timeline.label_cycles.get(service, 0.0)
            if service_cycles < 1.0:
                continue
            counters = timeline.label_counters[service]
            parts = model.energy_by_category(counters, int(service_cycles))
            bucket = energy.setdefault(service, {name: 0.0 for name in CATEGORIES})
            for name, value in parts.items():
                bucket[name] += value
            cycles[service] = cycles.get(service, 0.0) + service_cycles
    return {
        service: {
            name: value / (cycles[service] * cycle_time)
            for name, value in parts.items()
        }
        for service, parts in energy.items()
    }


def test_bench_fig8_service_average_power(suite_conventional, sw, benchmark):
    powers = benchmark(_service_power, suite_conventional, sw.model)
    print_header("Figure 8: average power of kernel services (in-run)")
    header = "  " + f"{'service':12s}" + "".join(
        f"{name:>10s}" for name in CATEGORIES)
    print(header + f"{'total W':>10s}")
    totals = {}
    for name in FIGURE8_SERVICES:
        parts = powers[name]
        total = sum(parts.values())
        totals[name] = total
        row = "  " + f"{name:12s}" + "".join(
            f"{parts[cat]:10.2f}" for cat in CATEGORIES)
        print(row + f"{total:10.2f}")

    # The Figure 8 ordering: utlb is clearly the lowest.
    assert totals["utlb"] == min(totals.values())
    for other in ("read", "demand_zero", "cacheflush"):
        assert totals[other] > 1.2 * totals["utlb"], other

    # Why: utlb barely exercises the data side; read does.
    utlb_d = powers["utlb"]["l1d"] / totals["utlb"]
    read_d = powers["read"]["l1d"] / totals["read"]
    assert utlb_d < read_d
