"""Figure 9: energy-performance tradeoffs for the disk configurations.

Two charts in the paper: per-benchmark disk energy (J) for all four
configurations, and total idle cycles for configurations 2-4.  The
qualitative findings reproduced here:

* dropping to IDLE after each request (config 2) always saves energy
  relative to the conventional baseline, at no performance cost,
* jess and db are unaffected by the 2 s spin-down threshold (their
  disk-inactivity gaps are too short to ever spin down),
* compress and javac suffer severe energy AND performance degradation
  at 2 s (requests land during/after the spin-down, paying the 5 s,
  4.2 W spin-up repeatedly) but return to config-2 behaviour at 4 s,
* jack improves substantially from 2 s to 4 s (one spin-down/spin-up
  pair is eliminated) but still spins down,
* mtrt performs the same two spin-downs under both thresholds —
  identical idle cycles — yet consumes MORE energy at 4 s, because the
  disk lingers in the costlier IDLE mode before reaching STANDBY.
"""

import pytest
from conftest import print_header

from repro.workloads import BENCHMARK_NAMES

CONFIGS = (1, 2, 3, 4)
CONFIG_LABELS = {
    1: "baseline",
    2: "no spindown",
    3: "2s spindown",
    4: "4s spindown",
}


@pytest.fixture(scope="module")
def sweep(sw):
    """energy[config][bench], idle_cycles[config][bench], spin pairs."""
    energy = {c: {} for c in CONFIGS}
    idle = {c: {} for c in CONFIGS}
    spindowns = {c: {} for c in CONFIGS}
    for config in CONFIGS:
        for name in BENCHMARK_NAMES:
            result = sw.run(name, disk=config)
            energy[config][name] = result.disk_energy_j
            idle[config][name] = result.idle_cycles
            spindowns[config][name] = result.timeline.disk.state.spindowns
    return energy, idle, spindowns


def test_bench_fig9_disk_energy(sweep, benchmark):
    energy, idle, spindowns = sweep
    benchmark.pedantic(lambda: dict(energy), rounds=1, iterations=1)
    print_header("Figure 9 (left): disk energy per configuration (J)")
    header = "  " + f"{'benchmark':10s}" + "".join(
        f"{CONFIG_LABELS[c]:>13s}" for c in CONFIGS)
    print(header)
    for name in BENCHMARK_NAMES:
        print("  " + f"{name:10s}" + "".join(
            f"{energy[c][name]:13.1f}" for c in CONFIGS))
    print_header("Figure 9 (right): idle cycles per configuration")
    for name in BENCHMARK_NAMES:
        print("  " + f"{name:10s}" + "".join(
            f"{idle[c][name]:13.3g}" for c in CONFIGS[1:]))
    print("  spin-down counts:")
    for name in BENCHMARK_NAMES:
        print("  " + f"{name:10s}" + "".join(
            f"{spindowns[c][name]:13d}" for c in CONFIGS[1:]))

    # Config 2 always beats the conventional baseline, for free.
    for name in BENCHMARK_NAMES:
        assert energy[2][name] < energy[1][name], name
        assert idle[2][name] == pytest.approx(idle[1][name], rel=0.01), name


def test_bench_fig9_jess_db_unaffected(sweep, benchmark):
    energy, idle, spindowns = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    for name in ("jess", "db"):
        assert spindowns[3][name] == 0, name
        assert energy[3][name] == pytest.approx(energy[2][name], rel=0.02)
        assert idle[3][name] == pytest.approx(idle[2][name], rel=0.02)


def test_bench_fig9_compress_javac_pathology_at_2s(sweep, benchmark):
    energy, idle, spindowns = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    for name in ("compress", "javac"):
        # Severe energy and performance degradation at 2 s...
        assert spindowns[3][name] >= 2, name
        assert energy[3][name] > 2.0 * energy[2][name], name
        assert idle[3][name] > 3.0 * idle[2][name], name
        # ...gone at 4 s: behaviour returns to configuration 2.
        assert spindowns[4][name] == 0, name
        assert energy[4][name] == pytest.approx(energy[2][name], rel=0.02)


def test_bench_fig9_jack_improves_at_4s(sweep, benchmark):
    energy, idle, spindowns = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    # Still spins down at 4 s, but one pair is eliminated...
    assert spindowns[3]["jack"] > spindowns[4]["jack"] >= 1
    # ...improving energy by roughly the paper's 33 % and cutting idle.
    improvement = 1.0 - energy[4]["jack"] / energy[3]["jack"]
    print(f"\n  jack energy improvement 2s -> 4s: {improvement * 100:.0f}% "
          f"(paper: ~33%)")
    assert 0.15 < improvement < 0.60
    assert idle[4]["jack"] < idle[3]["jack"]


def test_bench_fig9_mtrt_energy_rises_at_4s(sweep, benchmark):
    energy, idle, spindowns = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    # Both thresholds perform the same two spin-down/spin-up pairs.
    assert spindowns[3]["mtrt"] == spindowns[4]["mtrt"] == 2
    assert idle[4]["mtrt"] == pytest.approx(idle[3]["mtrt"], rel=0.02)
    # Yet the 4 s threshold consumes MORE energy: the disk waits in
    # IDLE (1.6 W) longer before reaching STANDBY (0.35 W).
    assert energy[4]["mtrt"] > energy[3]["mtrt"]
