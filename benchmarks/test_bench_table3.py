"""Table 3: L1 cache references per cycle, by mode.

Paper values: user code sustains ~2 iL1 references per cycle (its
higher ILP yields a larger effective fetch width) with ~0.6 dL1; kernel
code manages only ~1.1/~0.2; synchronisation is fetch-hot but
load-light; the idle loop sits near 0.78/0.35.  Absolute levels in this
reproduction run below the paper's (our timing model is conservative
about fetch-side speculation) — the *orderings and ratios*, which drive
every power conclusion, are asserted.
"""

from conftest import print_header

from repro.kernel import ExecutionMode
from repro.workloads import BENCHMARK_NAMES

PAPER_TABLE3 = {
    # benchmark: ((user_i, user_d), (kern_i, kern_d),
    #             (sync_i, sync_d), (idle_i, idle_d))
    "compress": ((2.0088, 0.6833), (1.1203, 0.2080), (1.5560, 0.1745), (0.7612, 0.3546)),
    "jess": ((1.9861, 0.6217), (1.1143, 0.2164), (1.5956, 0.1775), (0.8267, 0.3851)),
    "db": ((2.0911, 0.6699), (1.0602, 0.1892), (1.5240, 0.1832), (0.7244, 0.3375)),
    "javac": ((1.9685, 0.5604), (1.0346, 0.1835), (1.5355, 0.1720), (0.8110, 0.3778)),
    "mtrt": ((2.1105, 0.6473), (1.0850, 0.1908), (1.5177, 0.1697), (0.7524, 0.3505)),
    "jack": ((1.8465, 0.5869), (1.0410, 0.1931), (1.5585, 0.1708), (0.8718, 0.4061)),
}

MODES = (ExecutionMode.USER, ExecutionMode.KERNEL, ExecutionMode.SYNC,
         ExecutionMode.IDLE)


def _rates(results):
    return {name: result.cache_rates() for name, result in results.items()}


def test_bench_table3(suite_conventional, benchmark):
    table = benchmark(_rates, suite_conventional)
    print_header("Table 3: cache references per cycle (measured | paper)")
    print(f"  {'benchmark':10s} {'user i/d':>13s} {'kernel i/d':>13s} "
          f"{'sync i/d':>13s} {'idle i/d':>13s}")
    for name in BENCHMARK_NAMES:
        rates = table[name]
        cells = " ".join(
            f"{rates[mode].il1_per_cycle:5.2f}/{rates[mode].dl1_per_cycle:4.2f}"
            for mode in MODES)
        print(f"  {name:10s}  {cells}")
        paper = PAPER_TABLE3[name]
        ref = " ".join(f"{i:5.2f}/{d:4.2f}" for i, d in paper)
        print(f"  {'  (paper)':10s}  {ref}")

    for name in BENCHMARK_NAMES:
        rates = table[name]
        user = rates[ExecutionMode.USER]
        kernel = rates[ExecutionMode.KERNEL]
        idle = rates[ExecutionMode.IDLE]
        # User code fetches fastest: its ILP gives the largest
        # effective fetch width (Section 3.2).
        assert user.il1_per_cycle > kernel.il1_per_cycle, name
        # User code also leads on data references per cycle.
        assert user.dl1_per_cycle > kernel.dl1_per_cycle, name
        assert user.dl1_per_cycle > 0.8 * idle.dl1_per_cycle, name
        # Kernel code is load-light relative to its fetch rate: its
        # d/i ratio sits well below user's and idle's.
        kernel_ratio = kernel.dl1_per_cycle / kernel.il1_per_cycle
        user_ratio = user.dl1_per_cycle / user.il1_per_cycle
        idle_ratio = idle.dl1_per_cycle / idle.il1_per_cycle
        assert kernel_ratio < user_ratio, name
        assert kernel_ratio < idle_ratio, name
        # The idle loop polls two words per six instructions: the
        # paper's idle d/i ratio is ~0.46; ours must be in range.
        assert 0.25 <= idle_ratio <= 0.55, name
