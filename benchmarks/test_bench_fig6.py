"""Figure 6: average power per software mode (suite average).

Paper: the user mode has the highest average power (driven by the L1
I-cache, thanks to user code's higher ILP and effective fetch width);
synchronisation is expensive per cycle; the kernel's average power is
the lowest of the active modes; busy-wait idle still burns real power.
"""

from conftest import print_header

from repro.kernel import ExecutionMode
from repro.power import REGISTRY

CATEGORIES = REGISTRY.counter_categories

MODES = (ExecutionMode.USER, ExecutionMode.KERNEL, ExecutionMode.SYNC,
         ExecutionMode.IDLE)


def _isolated_sync_power(sw):
    """Measure synchronisation power from dedicated spin sections.

    Sync episodes are tiny (tens of instructions) and overlap with
    in-flight user work, so their in-run cycle attribution is noisy;
    running whole sections in isolation gives the clean per-cycle view,
    exactly as the per-service profiles do."""
    from repro.cpu import MXSProcessor
    from repro.kernel import Kernel
    from repro.mem import MemoryHierarchy
    from repro.stats.counters import AccessCounters

    hierarchy = MemoryHierarchy(sw.config, AccessCounters())
    kernel = Kernel(sw.config, hierarchy, seed=3)
    cpu = MXSProcessor(sw.config, hierarchy, trap_client=kernel)
    merged = None
    for _ in range(200):
        stats = cpu.run(kernel.sync_section(spins=24))
        merged = stats if merged is None else merged.merged(stats)
    label = merged.labels["kernel_sync"]
    cycles = max(1, int(label.cycles))
    energies = sw.model.energy_by_category(label.counters, cycles)
    seconds = cycles * sw.model.technology.cycle_time_s
    return {name: energies[name] / seconds for name in CATEGORIES}


def _suite_mode_power(results, sw):
    accumulated = {mode: {name: 0.0 for name in CATEGORIES} for mode in MODES}
    counts = {mode: 0 for mode in MODES}
    for result in results.values():
        per_mode = result.mode_average_power()
        for mode in MODES:
            total = sum(per_mode[mode].values())
            if total <= 0.0:
                continue
            counts[mode] += 1
            for name in CATEGORIES:
                accumulated[mode][name] += per_mode[mode][name]
    averaged = {
        mode: {name: value / max(1, counts[mode])
               for name, value in parts.items()}
        for mode, parts in accumulated.items()
    }
    averaged[ExecutionMode.SYNC] = _isolated_sync_power(sw)
    return averaged


def test_bench_fig6_mode_average_power(suite_conventional, sw, benchmark):
    mode_power = benchmark(_suite_mode_power, suite_conventional, sw)
    print_header("Figure 6: average power per mode (suite average)")
    header = "  " + f"{'mode':8s}" + "".join(f"{name:>10s}" for name in CATEGORIES)
    print(header + f"{'total':>10s}")
    totals = {}
    for mode in MODES:
        parts = mode_power[mode]
        total = sum(parts.values())
        totals[mode] = total
        row = "  " + f"{mode.value:8s}" + "".join(
            f"{parts[name]:10.2f}" for name in CATEGORIES)
        print(row + f"{total:10.2f}")

    # User mode consumes the most power among the *sustained* modes;
    # synchronisation — which the paper already shows as an expensive
    # close second — may approach it (see EXPERIMENTS.md).
    assert totals[ExecutionMode.USER] >= 0.80 * max(totals.values())
    assert totals[ExecutionMode.USER] > totals[ExecutionMode.KERNEL]
    assert totals[ExecutionMode.USER] > totals[ExecutionMode.IDLE]
    # Synchronisation is more power-hungry than plain kernel execution
    # (tight compare/increment loops exercising the L1I and ALUs).
    assert totals[ExecutionMode.SYNC] > totals[ExecutionMode.KERNEL]
    # Busy-wait idle is NOT a low-power state (Section 1): it burns a
    # substantial fraction of kernel-mode power.
    assert totals[ExecutionMode.IDLE] > 0.4 * totals[ExecutionMode.KERNEL]
    # The L1 I-cache is the biggest user-mode consumer after the clock.
    user = mode_power[ExecutionMode.USER]
    assert user["l1i"] >= max(user["l1d"], user["l2d"], user["l2i"], user["memory"])
